// Property tests for the intra-op parallel kernels: under any
// util::ExecContext (thread counts 1/2/3/8, shapes chosen so chunk
// boundaries fall oddly, filters % threads != 0), every kernel must
// produce output BYTE-identical to its serial execution. This is the
// contract that lets serving turn on intra-op parallelism without
// perturbing a single logit; the CI TSan lane runs these same tests to
// prove the chunking is race-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/int_engine.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/vgg_small.h"
#include "serve/engine_session.h"
#include "tensor/ops.h"
#include "util/exec_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cq {
namespace {

using tensor::Tensor;

/// Thread counts the suite sweeps: serial, even, odd (so chunk edges
/// land mid-row-group), and more threads than most tested shapes have
/// rows.
constexpr int kThreadCounts[] = {1, 2, 3, 8};

/// Pool sized for `threads` participants (caller included).
std::unique_ptr<util::ThreadPool> pool_for(int threads) {
  return threads > 1 ? std::make_unique<util::ThreadPool>(threads - 1) : nullptr;
}

bool same_bytes(const float* a, const float* b, std::size_t count) {
  return std::memcmp(a, b, count * sizeof(float)) == 0;
}

std::vector<float> random_floats(std::size_t count, util::Rng& rng) {
  std::vector<float> out(count);
  for (float& v : out) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return out;
}

TEST(ParallelKernelsGemm, AllVariantsByteIdenticalAcrossThreadCounts) {
  util::Rng rng(101);
  for (int iter = 0; iter < 12; ++iter) {
    // Odd sizes on purpose: m rarely divides the thread count.
    const int m = static_cast<int>(rng.uniform_int(1, 37));
    const int k = static_cast<int>(rng.uniform_int(1, 29));
    const int n = static_cast<int>(rng.uniform_int(1, 23));
    const bool accumulate = iter % 2 == 1;
    const std::vector<float> a = random_floats(static_cast<std::size_t>(m) * k, rng);
    const std::vector<float> b = random_floats(static_cast<std::size_t>(m) * k * n, rng);
    const std::vector<float> c_init =
        random_floats(static_cast<std::size_t>(m) * std::max(k, n), rng);

    // gemm: A[m,k] * B[k,n].
    std::vector<float> serial(c_init.begin(),
                              c_init.begin() + static_cast<std::size_t>(m) * n);
    tensor::gemm(a.data(), b.data(), serial.data(), m, k, n, accumulate);
    // gemm_at_b: A[k,m]^T * B[k,n] (reuse a as [k,m] when sizes allow).
    std::vector<float> serial_atb(c_init.begin(),
                                  c_init.begin() + static_cast<std::size_t>(m) * n);
    tensor::gemm_at_b(b.data(), b.data(), serial_atb.data(), k, m, n, accumulate);
    // gemm_a_bt: A[m,k] * B[n,k].
    std::vector<float> serial_abt(c_init.begin(),
                                  c_init.begin() + static_cast<std::size_t>(m) * n);
    tensor::gemm_a_bt(a.data(), b.data(), serial_abt.data(), m, k, n, accumulate);

    for (const int t : kThreadCounts) {
      const auto pool = pool_for(t);
      const util::ExecContext exec{pool.get(), t};

      std::vector<float> out(c_init.begin(),
                             c_init.begin() + static_cast<std::size_t>(m) * n);
      tensor::gemm(a.data(), b.data(), out.data(), m, k, n, accumulate, exec);
      EXPECT_TRUE(same_bytes(out.data(), serial.data(), out.size()))
          << "gemm m=" << m << " k=" << k << " n=" << n << " threads=" << t;

      std::vector<float> out_atb(c_init.begin(),
                                 c_init.begin() + static_cast<std::size_t>(m) * n);
      tensor::gemm_at_b(b.data(), b.data(), out_atb.data(), k, m, n, accumulate, exec);
      EXPECT_TRUE(same_bytes(out_atb.data(), serial_atb.data(), out_atb.size()))
          << "gemm_at_b m=" << m << " k=" << k << " n=" << n << " threads=" << t;

      std::vector<float> out_abt(c_init.begin(),
                                 c_init.begin() + static_cast<std::size_t>(m) * n);
      tensor::gemm_a_bt(a.data(), b.data(), out_abt.data(), m, k, n, accumulate, exec);
      EXPECT_TRUE(same_bytes(out_abt.data(), serial_abt.data(), out_abt.size()))
          << "gemm_a_bt m=" << m << " k=" << k << " n=" << n << " threads=" << t;
    }
  }
}

TEST(ParallelKernelsIm2col, ByteIdenticalAcrossGeometries) {
  util::Rng rng(202);
  for (int iter = 0; iter < 10; ++iter) {
    tensor::ConvGeometry g;
    g.in_c = static_cast<int>(rng.uniform_int(1, 7));
    g.kernel = static_cast<int>(rng.uniform_int(0, 1)) == 0 ? 3 : 5;
    g.stride = static_cast<int>(rng.uniform_int(1, 2));
    g.pad = static_cast<int>(rng.uniform_int(0, 2));
    g.in_h = static_cast<int>(rng.uniform_int(g.kernel, 13));
    g.in_w = static_cast<int>(rng.uniform_int(g.kernel, 11));
    if (g.out_h() <= 0 || g.out_w() <= 0) continue;
    const std::vector<float> input =
        random_floats(static_cast<std::size_t>(g.in_c) * g.in_h * g.in_w, rng);
    const std::size_t cols_size =
        static_cast<std::size_t>(g.patch_size()) * g.out_h() * g.out_w();

    std::vector<float> serial(cols_size, -1.0f);
    tensor::im2col(input.data(), g, serial.data());
    for (const int t : kThreadCounts) {
      const auto pool = pool_for(t);
      const util::ExecContext exec{pool.get(), t};
      std::vector<float> cols(cols_size, -1.0f);
      tensor::im2col(input.data(), g, cols.data(), exec);
      EXPECT_TRUE(same_bytes(cols.data(), serial.data(), cols_size))
          << "im2col c=" << g.in_c << " k=" << g.kernel << " s=" << g.stride
          << " p=" << g.pad << " threads=" << t;
    }
  }
}

/// Random IntegerLayer: mixed per-filter bits including pruned (0-bit)
/// filters, dense random codes, random bias.
deploy::IntegerLayer random_integer_layer(int num_filters, std::int64_t per_filter,
                                          util::Rng& rng) {
  deploy::IntegerLayer layer;
  layer.num_filters = num_filters;
  layer.weights_per_filter = per_filter;
  layer.range_hi = static_cast<float>(rng.uniform(0.2, 1.5));
  layer.filter_bits.resize(static_cast<std::size_t>(num_filters));
  layer.codes.assign(static_cast<std::size_t>(num_filters) * per_filter, 0);
  layer.bias.resize(static_cast<std::size_t>(num_filters));
  for (int k = 0; k < num_filters; ++k) {
    const int b = static_cast<int>(rng.uniform_int(0, 4));  // 0 = pruned
    layer.filter_bits[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(b);
    layer.bias[static_cast<std::size_t>(k)] = static_cast<float>(rng.uniform(-1.0, 1.0));
    if (b == 0) continue;
    std::int32_t* row = layer.codes.data() + static_cast<std::size_t>(k) * per_filter;
    for (std::int64_t j = 0; j < per_filter; ++j) {
      row[j] = static_cast<std::int32_t>(rng.uniform_int(0, (1 << b) - 1));
    }
  }
  return layer;
}

deploy::ActCodes random_act_codes(std::size_t count, int bits, util::Rng& rng) {
  deploy::ActCodes acts;
  acts.bits = bits;
  acts.scale = static_cast<float>(rng.uniform(0.01, 0.5));
  acts.codes.resize(count);
  for (std::int32_t& c : acts.codes) {
    c = static_cast<std::int32_t>(rng.uniform_int(0, (1 << bits) - 1));
  }
  return acts;
}

TEST(ParallelKernelsIntegerConv, ByteIdenticalAcrossShapesAndThreadCounts) {
  util::Rng rng(303);
  for (int iter = 0; iter < 15; ++iter) {
    const int in_c = static_cast<int>(rng.uniform_int(1, 6));
    const int kernel = static_cast<int>(rng.uniform_int(0, 1)) == 0 ? 1 : 3;
    const int stride = static_cast<int>(rng.uniform_int(1, 2));
    const int pad = static_cast<int>(rng.uniform_int(0, 1));
    const int h = static_cast<int>(rng.uniform_int(kernel, 10));
    const int w = static_cast<int>(rng.uniform_int(kernel, 9));
    const int batch = static_cast<int>(rng.uniform_int(1, 3));
    // Prime-ish filter counts so filters % threads != 0 for 2, 3, 8.
    const int filter_choices[] = {1, 3, 5, 7, 17, 37};
    const int filters = filter_choices[rng.uniform_int(0, 5)];
    if ((h + 2 * pad - kernel) / stride + 1 <= 0) continue;
    if ((w + 2 * pad - kernel) / stride + 1 <= 0) continue;

    const std::int64_t per_filter = static_cast<std::int64_t>(in_c) * kernel * kernel;
    const deploy::IntegerLayer layer = random_integer_layer(filters, per_filter, rng);
    const deploy::ActCodes acts = random_act_codes(
        static_cast<std::size_t>(batch) * in_c * h * w, 3, rng);

    const Tensor serial =
        deploy::integer_conv_forward(layer, acts, batch, in_c, h, w, kernel, stride, pad);
    for (const int t : kThreadCounts) {
      const auto pool = pool_for(t);
      const util::ExecContext exec{pool.get(), t};
      const Tensor out = deploy::integer_conv_forward(layer, acts, batch, in_c, h, w,
                                                      kernel, stride, pad, exec);
      ASSERT_EQ(out.shape(), serial.shape());
      EXPECT_TRUE(same_bytes(out.data(), serial.data(), serial.numel()))
          << "conv filters=" << filters << " in_c=" << in_c << " h=" << h << " w=" << w
          << " k=" << kernel << " s=" << stride << " p=" << pad << " threads=" << t;
    }
  }
}

TEST(ParallelKernelsIntegerLinear, ByteIdenticalAcrossShapesAndThreadCounts) {
  util::Rng rng(404);
  for (int iter = 0; iter < 15; ++iter) {
    const int in_features = static_cast<int>(rng.uniform_int(1, 64));
    const int filter_choices[] = {1, 2, 3, 5, 7, 17, 37};
    const int filters = filter_choices[rng.uniform_int(0, 6)];
    const int batch = static_cast<int>(rng.uniform_int(1, 5));

    const deploy::IntegerLayer layer = random_integer_layer(filters, in_features, rng);
    const deploy::ActCodes acts = random_act_codes(
        static_cast<std::size_t>(batch) * in_features, 4, rng);

    const Tensor serial = deploy::integer_linear_forward(layer, acts, batch, in_features);
    for (const int t : kThreadCounts) {
      const auto pool = pool_for(t);
      const util::ExecContext exec{pool.get(), t};
      const Tensor out =
          deploy::integer_linear_forward(layer, acts, batch, in_features, exec);
      ASSERT_EQ(out.shape(), serial.shape());
      EXPECT_TRUE(same_bytes(out.data(), serial.data(), serial.numel()))
          << "linear filters=" << filters << " in=" << in_features
          << " batch=" << batch << " threads=" << t;
    }
  }
}

TEST(ParallelKernelsEncode, ByteIdenticalCodes) {
  util::Rng rng(505);
  for (int iter = 0; iter < 8; ++iter) {
    const int numel = static_cast<int>(rng.uniform_int(1, 4097));
    Tensor acts({numel});
    for (int i = 0; i < numel; ++i) {
      acts[static_cast<std::size_t>(i)] = static_cast<float>(rng.uniform(-0.5, 1.5));
    }
    const float hi = static_cast<float>(rng.uniform(0.3, 1.2));
    const int bits = static_cast<int>(rng.uniform_int(1, 8));

    deploy::ActCodes serial;
    deploy::encode_activations_into(acts, hi, bits, serial);
    for (const int t : kThreadCounts) {
      const auto pool = pool_for(t);
      const util::ExecContext exec{pool.get(), t};
      deploy::ActCodes out;
      deploy::encode_activations_into(acts, hi, bits, out, exec);
      ASSERT_EQ(out.codes.size(), serial.codes.size());
      EXPECT_EQ(out.scale, serial.scale);
      EXPECT_EQ(0, std::memcmp(out.codes.data(), serial.codes.data(),
                               serial.codes.size() * sizeof(std::int32_t)))
          << "encode numel=" << numel << " bits=" << bits << " threads=" << t;
    }
  }
}

/// Same-seeded layers, one serial and one with an ExecContext: the
/// float forward/backward must not differ by a single bit.
TEST(ParallelKernelsConv2d, FloatForwardBackwardByteIdentical) {
  for (const bool quantized : {false, true}) {
    for (const int t : kThreadCounts) {
      util::Rng rng_a(606);
      util::Rng rng_b(606);
      nn::Conv2d serial(3, 13, 3, 1, 1, rng_a);   // 13 filters: odd chunks
      nn::Conv2d threaded(3, 13, 3, 1, 1, rng_b);
      const auto pool = pool_for(t);
      threaded.set_exec_context(util::ExecContext{pool.get(), t});
      if (quantized) {
        serial.set_filter_bits(std::vector<int>{2, 3, 0, 1, 4, 2, 2, 3, 0, 2, 1, 4, 2});
        threaded.set_filter_bits(std::vector<int>{2, 3, 0, 1, 4, 2, 2, 3, 0, 2, 1, 4, 2});
      }
      util::Rng data_rng(707);
      const Tensor x = Tensor::randn({2, 3, 9, 7}, data_rng);
      const Tensor y_serial = serial.forward(x);
      const Tensor y_threaded = threaded.forward(x);
      ASSERT_EQ(y_serial.shape(), y_threaded.shape());
      EXPECT_TRUE(same_bytes(y_serial.data(), y_threaded.data(), y_serial.numel()))
          << "forward quantized=" << quantized << " threads=" << t;

      const Tensor grad = Tensor::randn(y_serial.shape(), data_rng);
      const Tensor dx_serial = serial.backward(grad);
      const Tensor dx_threaded = threaded.backward(grad);
      EXPECT_TRUE(same_bytes(dx_serial.data(), dx_threaded.data(), dx_serial.numel()))
          << "backward dx quantized=" << quantized << " threads=" << t;
      EXPECT_TRUE(same_bytes(serial.weight().grad.data(), threaded.weight().grad.data(),
                             serial.weight().grad.numel()))
          << "backward dW quantized=" << quantized << " threads=" << t;
      EXPECT_TRUE(same_bytes(serial.bias().grad.data(), threaded.bias().grad.data(),
                             serial.bias().grad.numel()))
          << "backward db quantized=" << quantized << " threads=" << t;
    }
  }
}

TEST(ParallelKernelsLinear, FloatForwardBackwardByteIdentical) {
  for (const int t : kThreadCounts) {
    util::Rng rng_a(808);
    util::Rng rng_b(808);
    nn::Linear serial(11, 17, rng_a);
    nn::Linear threaded(11, 17, rng_b);
    const auto pool = pool_for(t);
    threaded.set_exec_context(util::ExecContext{pool.get(), t});
    util::Rng data_rng(909);
    const Tensor x = Tensor::randn({5, 11}, data_rng);
    const Tensor y_serial = serial.forward(x);
    const Tensor y_threaded = threaded.forward(x);
    EXPECT_TRUE(same_bytes(y_serial.data(), y_threaded.data(), y_serial.numel()))
        << "forward threads=" << t;

    const Tensor grad = Tensor::randn(y_serial.shape(), data_rng);
    const Tensor dx_serial = serial.backward(grad);
    const Tensor dx_threaded = threaded.backward(grad);
    EXPECT_TRUE(same_bytes(dx_serial.data(), dx_threaded.data(), dx_serial.numel()))
        << "backward threads=" << t;
    EXPECT_TRUE(same_bytes(serial.weight().grad.data(), threaded.weight().grad.data(),
                           serial.weight().grad.numel()))
        << "backward dW threads=" << t;
  }
}

/// End-to-end: a full EngineSession with an intra-op pool must produce
/// byte-identical logits to a serial session over the whole network
/// (encode -> integer conv/linear -> float stem/head). Also the TSan
/// target proving the chunked kernels are race-free in situ.
TEST(ParallelKernelsEngine, SessionByteIdenticalWithIntraOpPool) {
  nn::VggSmallConfig cfg;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.c1 = 4;
  cfg.c2 = 6;
  cfg.c3 = 8;
  cfg.f1 = 24;
  cfg.f2 = 16;
  cfg.f3 = 12;
  nn::VggSmall model(cfg);
  util::Rng rng(42);
  model.calibrate_activations(Tensor::rand_uniform({16, 3, 8, 8}, rng, 0.0f, 1.0f));
  model.set_activation_bits(3);
  const int pattern[7] = {2, 3, 1, 4, 2, 0, 2};
  int i = 0;
  for (const nn::ScoredLayerRef& ref : model.scored_layers()) {
    for (quant::QuantizableLayer* layer : ref.layers) {
      std::vector<int> bits(static_cast<std::size_t>(layer->num_filters()));
      for (int& b : bits) b = pattern[i++ % 7];
      layer->set_filter_bits(std::move(bits));
    }
  }
  const deploy::QuantizedArtifact artifact = deploy::export_model(model);

  serve::EngineSession serial(artifact, 1);
  const Tensor batch = Tensor::rand_uniform({3, 3, 8, 8}, rng, 0.0f, 1.0f);
  const Tensor expected = serial.run(batch);

  for (const int t : {2, 3}) {
    util::ThreadPool pool(t - 1);
    serve::EngineSession threaded(artifact, 1, util::ExecContext{&pool, t});
    const Tensor out = threaded.run(batch);
    ASSERT_EQ(out.shape(), expected.shape());
    EXPECT_TRUE(same_bytes(out.data(), expected.data(), expected.numel()))
        << "engine threads=" << t;
  }
}

}  // namespace
}  // namespace cq
