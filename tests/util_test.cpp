#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace cq::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalMeanStddevScaled) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(9);
  Rng child = parent.split();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Rng, RandomPermutationIsPermutation) {
  Rng rng(13);
  const auto perm = random_permutation(50, rng);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Stats, SummarizeBasic) {
  const std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  const Summary s = summarize(std::span<const float>(v));
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-9);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize(std::span<const float>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, HistogramBucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(50.0);  // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, HistogramBinCenter) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-9);
  EXPECT_NEAR(h.bin_center(9), 9.5, 1e-9);
}

TEST(Stats, HistogramRenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.9);
  h.add(0.95);
  const std::string rendered = h.render(10);
  EXPECT_NE(rendered.find("1"), std::string::npos);
  EXPECT_NE(rendered.find("2"), std::string::npos);
}

TEST(Stats, ArgsortAscendingAndDescending) {
  const std::vector<float> v = {3.0f, 1.0f, 2.0f};
  const auto asc = argsort(std::span<const float>(v));
  EXPECT_EQ(asc, (std::vector<std::size_t>{1, 2, 0}));
  const auto desc = argsort_desc(std::span<const float>(v));
  EXPECT_EQ(desc, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(Table, RendersHeaderAndRows) {
  Table t({"model", "acc"});
  t.add_row({"vgg", Table::num(0.925, 3)});
  const std::string s = t.render();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("0.925"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, AsciiBarScales) {
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10).size(), 5u);
  EXPECT_EQ(ascii_bar(10.0, 10.0, 10).size(), 10u);
  EXPECT_TRUE(ascii_bar(0.0, 10.0, 10).empty());
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = testing::TempDir() + "/cq_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"plain", "with,comma"});
    w.add_row({"quote\"inside", "line\nbreak"});
    EXPECT_EQ(w.rows(), 2u);
  }
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--epochs=5", "--verbose", "--lr=0.1", "--name=vgg"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("epochs", 0), 5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("lr", 0.0), 0.1);
  EXPECT_EQ(cli.get("name", ""), "vgg");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

}  // namespace
}  // namespace cq::util
