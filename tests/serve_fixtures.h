#pragma once

// Shared serving fixtures: model-zoo artifacts fabricated without
// training (calibrated activation quantizers + a mixed per-filter bit
// pattern including pruned filters). Used by serve_test.cpp and
// plan_test.cpp so both suites exercise the exact same deployment
// payloads, and by bench/plan_compile for default-size zoo artifacts.

#include "deploy/artifact.h"
#include "nn/models/mlp.h"
#include "nn/models/model.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "util/rng.h"

namespace cq::serve {

/// Gives `model` a deployable state without training: calibrated
/// activation quantizers and a mixed per-filter bit arrangement
/// (including pruned filters), then exports it.
inline deploy::QuantizedArtifact fabricate_artifact(nn::Model& model,
                                                    const tensor::Shape& in,
                                                    int act_bits, std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Shape calib_shape;
  calib_shape.push_back(32);
  calib_shape.insert(calib_shape.end(), in.begin(), in.end());
  model.calibrate_activations(
      tensor::Tensor::rand_uniform(calib_shape, rng, 0.0f, 1.0f));
  model.set_activation_bits(act_bits);
  const int pattern[7] = {2, 3, 1, 4, 2, 0, 2};
  int i = 0;
  for (const nn::ScoredLayerRef& ref : model.scored_layers()) {
    for (quant::QuantizableLayer* layer : ref.layers) {
      std::vector<int> bits(static_cast<std::size_t>(layer->num_filters()));
      for (int& b : bits) b = pattern[i++ % 7];
      layer->set_filter_bits(std::move(bits));
    }
  }
  return deploy::export_model(model);
}

inline deploy::QuantizedArtifact tiny_vgg_artifact() {
  nn::VggSmallConfig cfg;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.c1 = 4;
  cfg.c2 = 6;
  cfg.c3 = 8;
  cfg.f1 = 24;
  cfg.f2 = 16;
  cfg.f3 = 12;
  nn::VggSmall model(cfg);
  return fabricate_artifact(model, {3, 8, 8}, 3, 11);
}

inline deploy::QuantizedArtifact tiny_mlp_artifact() {
  nn::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {20, 16, 14};
  cfg.num_classes = 5;
  nn::Mlp model(cfg);
  return fabricate_artifact(model, {12}, 4, 13);
}

inline deploy::QuantizedArtifact tiny_resnet_artifact() {
  nn::ResNet20Config cfg;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.base_width = 4;
  nn::ResNet20 model(cfg);
  return fabricate_artifact(model, {3, 8, 8}, 3, 17);
}

inline tensor::Tensor random_batch(const tensor::Shape& sample, int n,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Shape shape;
  shape.push_back(n);
  shape.insert(shape.end(), sample.begin(), sample.end());
  return tensor::Tensor::rand_uniform(shape, rng, -0.2f, 1.2f);
}

}  // namespace cq::serve
