#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/refine.h"
#include "data/synthetic.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"

namespace cq::core {
namespace {

/// Flat 3-class dataset split for MLP pipelines.
data::DataSplit make_flat_split(int train_pc, int val_pc, int test_pc, int features,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  auto gen = [&](int per_class) {
    data::Dataset d;
    const int n = 3 * per_class;
    d.images = nn::Tensor({n, features});
    d.labels.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int cls = i / per_class;
      for (int f = 0; f < features; ++f) {
        d.images.at(i, f) = static_cast<float>(rng.normal(f % 3 == cls ? 1.5 : 0.0, 0.4));
      }
      d.labels[static_cast<std::size_t>(i)] = cls;
    }
    return d;
  };
  data::DataSplit split;
  split.train = gen(train_pc);
  split.val = gen(val_pc);
  split.test = gen(test_pc);
  return split;
}

nn::Mlp trained_model(const data::DataSplit& split, int features, std::uint64_t seed) {
  nn::Mlp model({features, {24, 16, 12}, 3, seed});
  nn::TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 20;
  tc.lr = 0.05;
  nn::Trainer trainer(tc);
  trainer.fit(model, split.train.images, split.train.labels);
  return model;
}

TEST(Refiner, ImprovesQuantizedAccuracy) {
  const data::DataSplit split = make_flat_split(40, 10, 20, 6, 11);
  nn::Mlp model = trained_model(split, 6, 1);
  auto teacher = model.clone();

  // Aggressive uniform 1-bit quantization hurts; refinement must help.
  for (const auto& scored : model.scored_layers()) {
    for (auto* layer : scored.layers) {
      layer->set_filter_bits(std::vector<int>(
          static_cast<std::size_t>(layer->num_filters()), 1));
    }
  }
  RefineConfig rc;
  rc.epochs = 10;
  rc.batch_size = 20;
  rc.lr = 0.02;
  Refiner refiner(rc);
  const RefineResult result = refiner.run(model, *teacher, split.train, split.test);
  EXPECT_GE(result.accuracy_after, result.accuracy_before - 0.05);
  EXPECT_EQ(result.history.size(), 10u);
  // Quantization is still in force after refinement.
  EXPECT_FALSE(model.scored_layers()[0].layers.front()->filter_bits().empty());
}

TEST(CqPipeline, EndToEndOnMlp) {
  const data::DataSplit split = make_flat_split(40, 12, 20, 6, 13);
  nn::Mlp model = trained_model(split, 6, 2);
  const double fp_acc =
      nn::Trainer::evaluate(model, split.test.images, split.test.labels);
  ASSERT_GT(fp_acc, 0.8);

  CqConfig cfg;
  cfg.importance.samples_per_class = 10;
  cfg.search.max_bits = 4;
  cfg.search.desired_avg_bits = 2.0;
  cfg.search.t1 = 0.5;
  cfg.search.eval_samples = 36;
  cfg.refine.epochs = 8;
  cfg.refine.batch_size = 20;
  cfg.refine.lr = 0.02;
  cfg.activation_bits = 4;
  CqPipeline pipeline(cfg);
  const CqReport report = pipeline.run(model, split);

  EXPECT_NEAR(report.fp_accuracy, fp_acc, 1e-9);
  EXPECT_LE(report.achieved_avg_bits, 2.0 + 1e-9);
  EXPECT_EQ(report.thresholds.size(), 4u);
  EXPECT_FALSE(report.scores.empty());
  // The refined quantized model keeps most of the FP accuracy.
  EXPECT_GT(report.quant_accuracy, fp_acc - 0.25);
  // Model is left with quantization applied.
  EXPECT_FALSE(model.scored_layers()[0].layers.front()->filter_bits().empty());
  for (nn::ActQuant* aq : model.activation_quantizers()) EXPECT_EQ(aq->bits(), 4);
}

TEST(CqPipeline, UniformActivationBitsAreReported) {
  const data::DataSplit split = make_flat_split(30, 10, 10, 6, 19);
  nn::Mlp model = trained_model(split, 6, 5);
  CqConfig cfg;
  cfg.importance.samples_per_class = 8;
  cfg.search.desired_avg_bits = 3.0;
  cfg.search.eval_samples = 30;
  cfg.refine.epochs = 1;
  cfg.activation_bits = 3;
  const CqReport report = CqPipeline(cfg).run(model, split);
  ASSERT_EQ(report.activation_bits.size(), report.scores.size());
  for (const int b : report.activation_bits) EXPECT_EQ(b, 3);
}

TEST(CqPipeline, ClassBasedActivationBitsRespectTheAverage) {
  const data::DataSplit split = make_flat_split(30, 12, 10, 6, 23);
  nn::Mlp model = trained_model(split, 6, 6);
  CqConfig cfg;
  cfg.importance.samples_per_class = 8;
  cfg.search.desired_avg_bits = 3.0;
  cfg.search.eval_samples = 30;
  cfg.refine.epochs = 1;
  cfg.activation_bits = 4;
  cfg.class_based_activation_bits = true;
  const CqReport report = CqPipeline(cfg).run(model, split);

  ASSERT_EQ(report.activation_bits.size(), report.scores.size());
  double sum = 0.0;
  for (const int b : report.activation_bits) {
    EXPECT_GE(b, 1);
    EXPECT_LE(b, 8);
    sum += b;
  }
  EXPECT_LE(sum / static_cast<double>(report.activation_bits.size()), 4.0 + 1e-9);

  // The scored layers' quantizers carry the per-layer assignment.
  const auto scored = model.scored_layers();
  for (std::size_t i = 0; i < scored.size(); ++i) {
    ASSERT_NE(scored[i].act_quant, nullptr);
    EXPECT_EQ(scored[i].act_quant->bits(), report.activation_bits[i]);
  }
}

TEST(CqPipeline, ArrangementAverageMatchesReport) {
  const data::DataSplit split = make_flat_split(30, 10, 10, 6, 17);
  nn::Mlp model = trained_model(split, 6, 3);
  CqConfig cfg;
  cfg.search.desired_avg_bits = 2.5;
  cfg.search.t1 = 0.4;
  cfg.search.eval_samples = 30;
  cfg.refine.epochs = 2;
  cfg.refine.batch_size = 30;
  CqPipeline pipeline(cfg);
  const CqReport report = pipeline.run(model, split);
  EXPECT_NEAR(report.arrangement.average_bits(), report.achieved_avg_bits, 1e-9);
}

TEST(CqPipeline, RefinementDoesNotBreakBudget) {
  const data::DataSplit split = make_flat_split(30, 10, 10, 6, 19);
  nn::Mlp model = trained_model(split, 6, 4);
  CqConfig cfg;
  cfg.search.desired_avg_bits = 1.5;
  cfg.search.t1 = 0.4;
  cfg.search.eval_samples = 30;
  cfg.refine.epochs = 4;
  cfg.refine.batch_size = 30;
  CqPipeline pipeline(cfg);
  const CqReport report = pipeline.run(model, split);
  // Bits are structural: refinement trains weights, not bit-widths.
  EXPECT_NEAR(model.bit_arrangement().average_bits(), report.achieved_avg_bits, 1e-9);
}

}  // namespace
}  // namespace cq::core
