#include <gtest/gtest.h>

#include <span>
#include <thread>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/timer.h"

namespace cq {
namespace {

TEST(Logging, ThresholdFiltersLevels) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // possible on stderr here, but the calls must be safe).
  util::log_debug() << "dropped";
  util::log_info() << "dropped";
  util::set_log_level(saved);
}

TEST(Logging, StreamStyleComposesTypes) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  util::log_info() << "x=" << 42 << " y=" << 1.5 << " z=" << std::string("s");
  util::set_log_level(saved);
}

TEST(Timer, MeasuresElapsedTime) {
  util::Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
  EXPECT_LT(timer.seconds(), 5.0);
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(GemmAccumulate, AtBVariantAccumulates) {
  // A^T stored [k=2, m=2], B [k=2, n=2].
  const float at[] = {1, 3, 2, 4};  // A = [[1,2],[3,4]]
  const float b[] = {5, 6, 7, 8};
  float c[4] = {1, 1, 1, 1};
  tensor::gemm_at_b(at, b, c, 2, 2, 2, /*accumulate=*/true);
  // A*B = [[19,22],[43,50]] plus the existing ones.
  EXPECT_FLOAT_EQ(c[0], 20);
  EXPECT_FLOAT_EQ(c[3], 51);
}

TEST(GemmAccumulate, ABtVariantAccumulates) {
  const float a[] = {1, 2, 3, 4};
  const float bt[] = {5, 7, 6, 8};  // B = [[5,6],[7,8]] stored [n,k]
  float c[4] = {-19, -22, -43, -50};
  tensor::gemm_a_bt(a, bt, c, 2, 2, 2, /*accumulate=*/true);
  for (const float v : c) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Sequential, EmplaceReturnsTypedHandleAndForwardChains) {
  util::Rng rng(1);
  nn::Sequential seq;
  nn::Linear* fc1 = seq.emplace<nn::Linear>(4, 8, rng, "fc1");
  seq.emplace<nn::ReLU>();
  nn::Linear* fc2 = seq.emplace<nn::Linear>(8, 3, rng, "fc2");
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(fc1->out_features(), 8);
  EXPECT_EQ(fc2->in_features(), 8);
  const nn::Tensor y = seq.forward(nn::Tensor::randn({2, 4}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 3}));
  // Parameters collected in order: fc1.w, fc1.b, fc2.w, fc2.b.
  const auto params = seq.parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->name, "fc1.weight");
  EXPECT_EQ(params[2]->name, "fc2.weight");
}

TEST(Sequential, ZeroGradClearsEverything) {
  util::Rng rng(2);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(3, 3, rng);
  const nn::Tensor x = nn::Tensor::randn({2, 3}, rng);
  seq.forward(x);
  seq.backward(nn::Tensor::ones({2, 3}));
  bool any_nonzero = false;
  for (nn::Parameter* p : seq.parameters()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) any_nonzero |= p->grad[i] != 0.0f;
  }
  ASSERT_TRUE(any_nonzero);
  seq.zero_grad();
  for (nn::Parameter* p : seq.parameters()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
  }
}

TEST(Sequential, GradAccumulatesAcrossBackwardCalls) {
  util::Rng rng(3);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(3, 2, rng);
  const nn::Tensor x = nn::Tensor::ones({1, 3});
  const nn::Tensor g = nn::Tensor::ones({1, 2});
  seq.forward(x);
  seq.backward(g);
  const nn::Tensor after_one = seq.parameters()[0]->grad;
  seq.forward(x);
  seq.backward(g);
  const nn::Tensor after_two = seq.parameters()[0]->grad;
  EXPECT_TRUE(after_two.allclose(after_one * 2.0f, 1e-5f));
}

TEST(ConvGeometry, OutputDimsFormula) {
  tensor::ConvGeometry g;
  g.in_c = 3;
  g.in_h = 17;
  g.in_w = 9;
  g.kernel = 3;
  g.stride = 2;
  g.pad = 1;
  EXPECT_EQ(g.out_h(), 9);
  EXPECT_EQ(g.out_w(), 5);
  EXPECT_EQ(g.patch_size(), 27);
}

TEST(Percentile, InterpolatesAndHandlesEdges) {
  // Explicit element type: {} alone is ambiguous now that a float
  // overload exists.
  EXPECT_EQ(util::percentile(std::span<const double>{}, 50.0), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_EQ(util::percentile(one, 0.0), 7.0);
  EXPECT_EQ(util::percentile(one, 100.0), 7.0);

  // Order must not matter for the unsorted entry point.
  const std::vector<double> values = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(util::percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(util::percentile(values, 50.0), 25.0);   // between 20 and 30
  EXPECT_DOUBLE_EQ(util::percentile(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(util::percentile(values, 150.0), 40.0);  // clamped
  EXPECT_DOUBLE_EQ(util::percentile(values, -5.0), 10.0);   // clamped

  const std::vector<double> sorted = {10.0, 20.0, 30.0, 40.0};
  for (const double q : {0.0, 25.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(util::percentile_sorted(sorted, q), util::percentile(values, q));
  }
}

}  // namespace
}  // namespace cq
