#include <gtest/gtest.h>

#include <cmath>

#include "nn/fold_bn.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "util/rng.h"

namespace cq::nn {
namespace {

using tensor::Tensor;

/// Trains batch statistics into a BN by a few training-mode forwards.
void warm_up(Module& m, const Tensor& sample, int steps = 5) {
  m.set_training(true);
  for (int i = 0; i < steps; ++i) (void)m.forward(sample);
  m.set_training(false);
}

TEST(FoldBatchNorm, RejectsChannelMismatch) {
  util::Rng rng(1);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  BatchNorm2d bn(5);
  EXPECT_THROW(fold_batchnorm(conv, bn), std::invalid_argument);
}

TEST(FoldBatchNorm, ConvBnPairPreservesEvalOutputs) {
  util::Rng rng(2);
  Conv2d conv(3, 6, 3, 1, 1, rng);
  BatchNorm2d bn(6);
  // Non-trivial gamma/beta and running statistics.
  for (int k = 0; k < 6; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    bn.gamma().value[ku] = 0.5f + 0.3f * static_cast<float>(k);
    bn.beta().value[ku] = -0.2f + 0.1f * static_cast<float>(k);
  }
  const Tensor warm = Tensor::randn({4, 3, 8, 8}, rng);
  conv.set_training(true);
  bn.set_training(true);
  for (int i = 0; i < 5; ++i) (void)bn.forward(conv.forward(warm));
  conv.set_training(false);
  bn.set_training(false);

  const Tensor input = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor before = bn.forward(conv.forward(input));

  fold_batchnorm(conv, bn);
  const Tensor after = bn.forward(conv.forward(input));

  ASSERT_EQ(before.shape(), after.shape());
  for (std::size_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(after[i], before[i], 1e-4f) << "output " << i;
  }
}

TEST(FoldBatchNorm, FoldedBnIsNumericallyIdentity) {
  util::Rng rng(3);
  Conv2d conv(2, 4, 3, 1, 1, rng);
  BatchNorm2d bn(4);
  const Tensor warm = Tensor::randn({4, 2, 6, 6}, rng);
  conv.set_training(true);
  bn.set_training(true);
  for (int i = 0; i < 5; ++i) (void)bn.forward(conv.forward(warm));
  bn.set_training(false);

  fold_batchnorm(conv, bn);
  const Tensor probe = Tensor::randn({1, 4, 6, 6}, rng);
  const Tensor out = bn.forward(probe);
  for (std::size_t i = 0; i < probe.numel(); ++i) {
    EXPECT_NEAR(out[i], probe[i], 1e-5f) << "element " << i;
  }
}

TEST(FoldBatchNorm, VggChainFoldsEveryConvBnPair) {
  VggSmallConfig config;
  config.image_size = 8;
  config.c1 = 4;
  config.c2 = 6;
  config.c3 = 8;
  config.f1 = 16;
  config.f2 = 12;
  config.f3 = 8;
  VggSmall model(config);
  util::Rng rng(4);
  const Tensor warm = Tensor::randn({6, 3, 8, 8}, rng);
  warm_up(model, warm);

  const Tensor input = Tensor::randn({3, 3, 8, 8}, rng);
  const Tensor before = model.forward(input);

  const int folds = fold_batchnorm(model.body());
  EXPECT_EQ(folds, 5);  // conv0..conv4 each carry a BN

  const Tensor after = model.forward(input);
  for (std::size_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(after[i], before[i], 1e-3f) << "logit " << i;
  }
}

TEST(FoldBatchNorm, ResNetChainFoldsBlocksAndShortcuts) {
  ResNet20Config config;
  config.image_size = 8;
  config.base_width = 2;
  ResNet20 model(config);
  util::Rng rng(5);
  const Tensor warm = Tensor::randn({6, 3, 8, 8}, rng);
  warm_up(model, warm);

  const Tensor input = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor before = model.forward(input);

  // stem + 9 blocks x 2 convs + 2 projection shortcuts = 21 folds.
  const int folds = fold_batchnorm(model.body());
  EXPECT_EQ(folds, 21);

  const Tensor after = model.forward(input);
  for (std::size_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(after[i], before[i], 1e-3f) << "logit " << i;
  }
}

TEST(FoldBatchNorm, FoldingIsIdempotentOnOutputs) {
  VggSmallConfig config;
  config.image_size = 8;
  config.c1 = 4;
  config.c2 = 4;
  config.c3 = 4;
  config.f1 = 8;
  config.f2 = 8;
  config.f3 = 8;
  VggSmall model(config);
  util::Rng rng(6);
  warm_up(model, Tensor::randn({4, 3, 8, 8}, rng));

  const Tensor input = Tensor::randn({2, 3, 8, 8}, rng);
  (void)fold_batchnorm(model.body());
  const Tensor once = model.forward(input);
  (void)fold_batchnorm(model.body());
  const Tensor twice = model.forward(input);
  for (std::size_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(twice[i], once[i], 1e-4f) << "logit " << i;
  }
}

TEST(FoldBatchNorm, QuantizationAfterFoldingStillWorks) {
  // The intended flow: fold on the FP model, then quantize per filter.
  VggSmallConfig config;
  config.image_size = 8;
  config.c1 = 4;
  config.c2 = 4;
  config.c3 = 4;
  config.f1 = 8;
  config.f2 = 8;
  config.f3 = 8;
  VggSmall model(config);
  util::Rng rng(7);
  warm_up(model, Tensor::randn({4, 3, 8, 8}, rng));
  (void)fold_batchnorm(model.body());

  for (const auto& ref : model.scored_layers()) {
    for (auto* layer : ref.layers) {
      layer->set_filter_bits(
          std::vector<int>(static_cast<std::size_t>(layer->num_filters()), 4));
    }
  }
  const Tensor out = model.forward(Tensor::randn({2, 3, 8, 8}, rng));
  for (std::size_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i]));
  }
}

}  // namespace
}  // namespace cq::nn
