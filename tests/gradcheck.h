#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace cq::testutil {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  double max_input_error = 0.0;
  double max_param_error = 0.0;
  /// 95th-percentile errors. For deep ReLU networks a finite-
  /// difference step occasionally straddles an activation kink, making
  /// the *max* error meaningless noise; the quantile is the robust
  /// check for whole models.
  double p95_input_error = 0.0;
  double p95_param_error = 0.0;
};

/// Checks a module's backward() against central finite differences of
/// the scalar loss L = sum(w ⊙ module(x)) for a fixed random weighting
/// w. Verifies both the input gradient and every parameter gradient.
///
/// `eps` is the finite-difference step; float32 forward passes limit
/// achievable agreement to roughly 1e-2 relative for deep modules.
inline GradCheckResult gradcheck(nn::Module& module, nn::Tensor x, double eps = 1e-3,
                                 std::uint64_t seed = 99) {
  using nn::Tensor;
  util::Rng rng(seed);

  module.set_training(true);
  Tensor out = module.forward(x);
  Tensor w = Tensor::randn(out.shape(), rng);

  auto loss_of = [&](const Tensor& input) {
    const Tensor y = module.forward(input);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(w[i]) * y[i];
    return acc;
  };

  // Analytic gradients.
  module.zero_grad();
  module.forward(x);
  const Tensor dx = module.backward(w);

  GradCheckResult result;
  auto p95 = [](std::vector<double>& errs) {
    if (errs.empty()) return 0.0;
    std::sort(errs.begin(), errs.end());
    return errs[static_cast<std::size_t>(0.95 * static_cast<double>(errs.size() - 1))];
  };

  // Input gradient.
  std::vector<double> input_errors;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double lp = loss_of(x);
    x[i] = orig - static_cast<float>(eps);
    const double lm = loss_of(x);
    x[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double err = std::fabs(numeric - static_cast<double>(dx[i])) /
                       std::max(1.0, std::fabs(numeric));
    input_errors.push_back(err);
    result.max_input_error = std::max(result.max_input_error, err);
  }
  // Parameter gradients (analytic grads already accumulated above).
  std::vector<double> param_errors;
  for (nn::Parameter* p : module.parameters()) {
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(eps);
      const double lp = loss_of(x);
      p->value[i] = orig - static_cast<float>(eps);
      const double lm = loss_of(x);
      p->value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double err = std::fabs(numeric - static_cast<double>(p->grad[i])) /
                         std::max(1.0, std::fabs(numeric));
      param_errors.push_back(err);
      result.max_param_error = std::max(result.max_param_error, err);
    }
  }
  result.p95_input_error = p95(input_errors);
  result.p95_param_error = p95(param_errors);
  return result;
}

}  // namespace cq::testutil
