#include <gtest/gtest.h>

#include "nn/metrics.h"
#include "nn/loss.h"
#include "nn/models/mlp.h"

namespace cq::nn {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.class_total(0), 3u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(2), 0.0);
}

TEST(ConfusionMatrix, EmptyClassHasZeroAccuracy) {
  ConfusionMatrix cm(4);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(3), 0.0);
  EXPECT_EQ(cm.class_total(3), 0u);
}

TEST(ConfusionMatrix, RejectsOutOfRange) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, -1), std::out_of_range);
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrix, AddBatchUsesArgmax) {
  ConfusionMatrix cm(3);
  Tensor logits({2, 3});
  logits.at(0, 2) = 5.0f;  // predicts 2
  logits.at(1, 0) = 5.0f;  // predicts 0
  cm.add_batch(logits, {2, 1});
  EXPECT_EQ(cm.count(2, 2), 1u);
  EXPECT_EQ(cm.count(1, 0), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
}

TEST(ConfusionMatrix, WorstClassesSortedByRecall) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);            // class 0: 100%
  cm.add(1, 0);
  cm.add(1, 1);            // class 1: 50%
  cm.add(2, 0);            // class 2: 0%
  EXPECT_EQ(cm.worst_classes(2), (std::vector<int>{2, 1}));
  EXPECT_EQ(cm.worst_classes(10).size(), 3u);
}

TEST(ConfusionMatrix, PerClassVectorMatchesScalars) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 0);
  const auto acc = cm.per_class_accuracy();
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_DOUBLE_EQ(acc[0], cm.class_accuracy(0));
  EXPECT_DOUBLE_EQ(acc[1], cm.class_accuracy(1));
}

TEST(EvaluateConfusion, AgreesWithScalarAccuracyAndRestoresMode) {
  util::Rng rng(1);
  Mlp model({4, {8}, 3, 2});
  model.set_training(true);
  const Tensor images = Tensor::randn({23, 4}, rng);  // odd count: partial batch
  std::vector<int> labels(23);
  for (int i = 0; i < 23; ++i) labels[static_cast<std::size_t>(i)] = i % 3;
  const ConfusionMatrix cm = evaluate_confusion(model, images, labels, 3, 10);
  model.set_training(false);
  const Tensor logits = model.forward(images);
  EXPECT_DOUBLE_EQ(cm.accuracy(), accuracy(logits, labels));
  std::size_t total = 0;
  for (int c = 0; c < 3; ++c) total += cm.class_total(c);
  EXPECT_EQ(total, 23u);
}

}  // namespace
}  // namespace cq::nn
