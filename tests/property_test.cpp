// Cross-module property tests: invariants that must hold for all
// parameter combinations, checked with parameterized sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "core/search.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"
#include "quant/uniform.h"
#include "tensor/serialize.h"

namespace cq {
namespace {

// ---------------------------------------------------------------- quantizer

class QuantRangeSweep
    : public testing::TestWithParam<std::tuple<float, float, int>> {};

TEST_P(QuantRangeSweep, OutputStaysInClipRange) {
  const auto [lo, hi, bits] = GetParam();
  const quant::UniformRange r{lo, hi};
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(rng.uniform(-10.0, 10.0));
    const float q = quant::quantize_one(x, r, bits);
    EXPECT_GE(q, lo - 1e-5f);
    EXPECT_LE(q, hi + 1e-5f);
  }
}

TEST_P(QuantRangeSweep, MonotoneInInput) {
  const auto [lo, hi, bits] = GetParam();
  const quant::UniformRange r{lo, hi};
  float prev = quant::quantize_one(-10.0f, r, bits);
  for (float x = -10.0f; x <= 10.0f; x += 0.05f) {
    const float q = quant::quantize_one(x, r, bits);
    EXPECT_GE(q, prev - 1e-6f) << "x=" << x;
    prev = q;
  }
}

TEST_P(QuantRangeSweep, LevelCountRespected) {
  const auto [lo, hi, bits] = GetParam();
  const quant::UniformRange r{lo, hi};
  std::set<float> values;
  for (float x = lo - 1.0f; x <= hi + 1.0f; x += 0.01f) {
    values.insert(quant::quantize_one(x, r, bits));
  }
  EXPECT_LE(values.size(), static_cast<std::size_t>(quant::levels_for_bits(bits)));
}

INSTANTIATE_TEST_SUITE_P(
    RangesAndBits, QuantRangeSweep,
    testing::Values(std::tuple{-1.0f, 1.0f, 1}, std::tuple{-1.0f, 1.0f, 2},
                    std::tuple{-0.5f, 0.5f, 3}, std::tuple{0.0f, 4.0f, 2},
                    std::tuple{-2.5f, 2.5f, 4}, std::tuple{0.0f, 1.0f, 8}));

// ----------------------------------------------------------------- layers

TEST(LayerProperty, Conv1x1EqualsLinearPerPixel) {
  // A 1x1 convolution is a linear map applied at each pixel; verify
  // against a Linear layer sharing the same weights.
  util::Rng rng(2);
  nn::Conv2d conv(3, 5, 1, 1, 0, rng);
  nn::Linear fc(3, 5, rng);
  fc.weight().value = conv.weight().value.reshape({5, 3});
  fc.bias().value = conv.bias().value;

  const nn::Tensor x = nn::Tensor::randn({1, 3, 4, 4}, rng);
  const nn::Tensor y_conv = conv.forward(x);
  for (int h = 0; h < 4; ++h) {
    for (int w = 0; w < 4; ++w) {
      nn::Tensor pixel({1, 3});
      for (int c = 0; c < 3; ++c) pixel.at(0, c) = x.at(0, c, h, w);
      const nn::Tensor y_fc = fc.forward(pixel);
      for (int o = 0; o < 5; ++o) {
        EXPECT_NEAR(y_conv.at(0, o, h, w), y_fc.at(0, o), 1e-4f);
      }
    }
  }
}

TEST(LayerProperty, ForwardIsDeterministic) {
  util::Rng rng(3);
  nn::Conv2d conv(2, 4, 3, 1, 1, rng);
  const nn::Tensor x = nn::Tensor::randn({2, 2, 6, 6}, rng);
  EXPECT_TRUE(conv.forward(x).allclose(conv.forward(x)));
}

TEST(LayerProperty, QuantizedForwardNeverExceedsWeightRange) {
  util::Rng rng(4);
  nn::Linear fc(8, 6, rng);
  const float wmax = fc.weight().value.abs_max();
  for (int bits = 1; bits <= 4; ++bits) {
    fc.set_filter_bits(std::vector<int>(6, bits));
    fc.forward(nn::Tensor::randn({1, 8}, rng));
    EXPECT_LE(fc.effective_weight().abs_max(), wmax + 1e-5f) << "bits=" << bits;
  }
}

TEST(LayerProperty, BatchInvariance) {
  // Eval-mode forward of sample i must not depend on its batch mates.
  util::Rng rng(5);
  nn::Mlp model({6, {10, 8}, 3, 6});
  model.set_training(false);
  const nn::Tensor batch = nn::Tensor::randn({4, 6}, rng);
  const nn::Tensor full = model.forward(batch);
  for (int i = 0; i < 4; ++i) {
    nn::Tensor single({1, 6});
    for (int f = 0; f < 6; ++f) single.at(0, f) = batch.at(i, f);
    const nn::Tensor one = model.forward(single);
    for (int c = 0; c < 3; ++c) EXPECT_NEAR(one.at(0, c), full.at(i, c), 1e-5f);
  }
}

// ----------------------------------------------------------------- training

TEST(TrainingProperty, FitIsDeterministicForSeed) {
  util::Rng rng(7);
  nn::Tensor images = nn::Tensor::randn({60, 5}, rng);
  std::vector<int> labels(60);
  for (int i = 0; i < 60; ++i) labels[static_cast<std::size_t>(i)] = i % 3;

  auto run = [&](std::uint64_t seed) {
    nn::Mlp model({5, {8, 8}, 3, 9});
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 20;
    tc.seed = seed;
    nn::Trainer trainer(tc);
    return trainer.fit(model, images, labels);
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_DOUBLE_EQ(a[e].loss, b[e].loss);
  }
  EXPECT_NE(a.back().loss, c.back().loss);
}

TEST(TrainingProperty, ZeroLrChangesNothing) {
  util::Rng rng(8);
  nn::Mlp model({5, {8}, 3, 10});
  const nn::Tensor before = model.parameters()[0]->value;
  nn::Tensor images = nn::Tensor::randn({30, 5}, rng);
  std::vector<int> labels(30, 1);
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.lr = 0.0;
  tc.weight_decay = 0.0;
  nn::Trainer trainer(tc);
  trainer.fit(model, images, labels);
  EXPECT_TRUE(model.parameters()[0]->value.allclose(before));
}

// -------------------------------------------------------------- checkpoints

TEST(CheckpointProperty, ModelRoundTripsThroughSerialize) {
  util::Rng rng(11);
  nn::Mlp model({6, {12, 8}, 4, 12});
  model.set_training(false);
  const nn::Tensor x = nn::Tensor::randn({3, 6}, rng);
  const nn::Tensor y_before = model.forward(x);

  std::map<std::string, tensor::Tensor> state;
  const auto params = model.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    state.emplace("p" + std::to_string(i), params[i]->value);
  }
  const std::string path = testing::TempDir() + "/cq_model_ckpt.cqt";
  tensor::save_tensors(path, state);

  nn::Mlp other({6, {12, 8}, 4, 999});  // different init seed
  const auto loaded = tensor::load_tensors(path);
  const auto other_params = other.parameters();
  for (std::size_t i = 0; i < other_params.size(); ++i) {
    other_params[i]->value = loaded.at("p" + std::to_string(i));
  }
  other.set_training(false);
  EXPECT_TRUE(other.forward(x).allclose(y_before));
}

// ------------------------------------------------------------------ search

TEST(SearchProperty, EqualScoresGetEqualBits) {
  nn::Mlp model({4, {10, 8, 6}, 3, 13});
  auto scored = model.scored_layers();
  std::vector<core::LayerScores> scores(2);
  scores[0] = {scored[0].name, false, 8, 1, std::vector<float>(8, 5.0f),
               std::vector<float>(8, 5.0f), {}};
  scores[1] = {scored[1].name, false, 6, 1, std::vector<float>(6, 5.0f),
               std::vector<float>(6, 5.0f), {}};
  const quant::BitArrangement arr =
      core::ThresholdSearch::apply_thresholds(model, scores, {1.0, 2.0, 6.0, 7.0});
  for (const auto& layer : arr.layers()) {
    for (const int b : layer.filter_bits) EXPECT_EQ(b, layer.filter_bits.front());
  }
}

TEST(SearchProperty, ThresholdPermutationInvariant) {
  // bits_for_score counts threshold crossings, so any permutation of
  // the same threshold multiset yields the same bits.
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> shuffled = {3.0, 1.0, 4.0, 2.0};
  for (float s = 0.0f; s <= 5.0f; s += 0.1f) {
    EXPECT_EQ(core::ThresholdSearch::bits_for_score(s, sorted),
              core::ThresholdSearch::bits_for_score(s, shuffled));
  }
}

class UniformBitsSweep : public testing::TestWithParam<int> {};

TEST_P(UniformBitsSweep, UniformThresholdsGiveUniformAverage) {
  const int bits = GetParam();
  nn::Mlp model({4, {10, 8, 6}, 3, 14});
  auto scored = model.scored_layers();
  std::vector<core::LayerScores> scores;
  for (const auto& s : scored) {
    const int n = s.layers.front()->num_filters();
    core::LayerScores ls;
    ls.name = s.name;
    ls.channels = n;
    ls.filter_phi.assign(static_cast<std::size_t>(n), 10.0f);
    ls.neuron_gamma = ls.filter_phi;
    scores.push_back(std::move(ls));
  }
  // Thresholds: `bits` of them below 10, the rest above.
  std::vector<double> thresholds;
  for (int k = 1; k <= 4; ++k) thresholds.push_back(k <= bits ? 5.0 : 50.0);
  std::sort(thresholds.begin(), thresholds.end());
  const quant::BitArrangement arr =
      core::ThresholdSearch::apply_thresholds(model, scores, thresholds);
  EXPECT_DOUBLE_EQ(arr.average_bits(), static_cast<double>(bits));
}

INSTANTIATE_TEST_SUITE_P(Bits, UniformBitsSweep, testing::Values(0, 1, 2, 3, 4));

// -------------------------------------------------------------- act quant

TEST(ActQuantProperty, MonotoneAndIdempotent) {
  nn::ActQuant aq;
  aq.set_max_activation(2.0f);
  aq.set_bits(3);
  float prev = -1.0f;
  for (float x = 0.0f; x <= 3.0f; x += 0.01f) {
    nn::Tensor t({1}, {x});
    const float q = aq.forward(t)[0];
    EXPECT_GE(q, prev - 1e-6f);
    prev = q;
    nn::Tensor t2({1}, {q});
    EXPECT_FLOAT_EQ(aq.forward(t2)[0], q);
  }
}

TEST(ActQuantProperty, BitsZeroIsExactIdentity) {
  nn::ActQuant aq;
  aq.set_max_activation(1.0f);
  aq.set_bits(0);
  util::Rng rng(15);
  const nn::Tensor x = nn::Tensor::randn({100}, rng);
  EXPECT_TRUE(aq.forward(x).allclose(x, 0.0f));
}

// ------------------------------------------------------------ wrap period

TEST(WrapProperty, OutputBoundedByHalfPeriod) {
  util::Rng rng(16);
  for (const float period : {0.1f, 0.5f, 2.0f}) {
    nn::Linear fc(16, 4, rng);
    fc.bias().value.fill(0.0f);
    fc.set_accumulator_wrap(period);
    const nn::Tensor y = fc.forward(nn::Tensor::randn({8, 16}, rng, 3.0f));
    for (std::size_t i = 0; i < y.numel(); ++i) {
      EXPECT_LE(std::fabs(y[i]), period / 2.0f + 1e-4f) << "period=" << period;
    }
  }
}

TEST(WrapProperty, WideWrapIsIdentity) {
  util::Rng rng(17);
  nn::Linear fc(8, 4, rng);
  const nn::Tensor x = nn::Tensor::randn({4, 8}, rng);
  const nn::Tensor y_plain = fc.forward(x);
  fc.set_accumulator_wrap(1e9f);
  EXPECT_TRUE(fc.forward(x).allclose(y_plain, 1e-3f));
}

}  // namespace
}  // namespace cq
