// Reproducibility: the entire experiment stack is seeded, so repeated
// runs on one machine must agree bit-for-bit.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"

namespace cq {
namespace {

data::DataSplit flat_split(std::uint64_t seed) {
  util::Rng rng(seed);
  auto gen = [&](int per_class) {
    data::Dataset d;
    const int n = 3 * per_class;
    d.images = nn::Tensor({n, 6});
    d.labels.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int cls = i / per_class;
      for (int f = 0; f < 6; ++f) {
        d.images.at(i, f) = static_cast<float>(rng.normal(f % 3 == cls ? 1.5 : 0.0, 0.4));
      }
      d.labels[static_cast<std::size_t>(i)] = cls;
    }
    return d;
  };
  data::DataSplit s;
  s.train = gen(30);
  s.val = gen(10);
  s.test = gen(10);
  return s;
}

core::CqReport run_once() {
  const data::DataSplit split = flat_split(5);
  nn::Mlp model({6, {20, 14, 10}, 3, 4});
  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 30;
  tc.lr = 0.05;
  tc.seed = 9;
  nn::Trainer trainer(tc);
  trainer.fit(model, split.train.images, split.train.labels);

  core::CqConfig cfg;
  cfg.importance.samples_per_class = 10;
  cfg.search.desired_avg_bits = 2.0;
  cfg.search.t1 = 0.4;
  cfg.search.eval_samples = 30;
  cfg.refine.epochs = 3;
  cfg.refine.batch_size = 30;
  cfg.refine.seed = 11;
  cfg.activation_bits = 4;
  return core::CqPipeline(cfg).run(model, split);
}

TEST(Determinism, FullPipelineIsBitReproducible) {
  const core::CqReport a = run_once();
  const core::CqReport b = run_once();
  EXPECT_DOUBLE_EQ(a.fp_accuracy, b.fp_accuracy);
  EXPECT_DOUBLE_EQ(a.quant_accuracy, b.quant_accuracy);
  EXPECT_DOUBLE_EQ(a.achieved_avg_bits, b.achieved_avg_bits);
  ASSERT_EQ(a.thresholds.size(), b.thresholds.size());
  for (std::size_t i = 0; i < a.thresholds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.thresholds[i], b.thresholds[i]);
  }
  ASSERT_EQ(a.arrangement.layers().size(), b.arrangement.layers().size());
  for (std::size_t l = 0; l < a.arrangement.layers().size(); ++l) {
    EXPECT_EQ(a.arrangement.layers()[l].filter_bits,
              b.arrangement.layers()[l].filter_bits);
  }
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t l = 0; l < a.scores.size(); ++l) {
    EXPECT_EQ(a.scores[l].filter_phi, b.scores[l].filter_phi);
  }
}

TEST(Determinism, SyntheticDataIndependentOfGenerationOrder) {
  // Generating the split twice in different process states must agree
  // because all randomness flows from the config seed.
  const data::DataSplit a = flat_split(7);
  util::Rng unrelated(999);
  unrelated.next_u64();
  const data::DataSplit b = flat_split(7);
  EXPECT_TRUE(a.train.images.allclose(b.train.images, 0.0f));
}

}  // namespace
}  // namespace cq
