#include <gtest/gtest.h>

#include "baselines/loss_aware.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"

namespace cq::baselines {
namespace {

data::DataSplit make_split(std::uint64_t seed) {
  util::Rng rng(seed);
  auto gen = [&](int per_class) {
    data::Dataset d;
    const int n = 3 * per_class;
    d.images = nn::Tensor({n, 6});
    d.labels.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int cls = i / per_class;
      for (int f = 0; f < 6; ++f) {
        d.images.at(i, f) = static_cast<float>(rng.normal(f % 3 == cls ? 1.5 : 0.0, 0.4));
      }
      d.labels[static_cast<std::size_t>(i)] = cls;
    }
    return d;
  };
  data::DataSplit split;
  split.train = gen(40);
  split.val = gen(15);
  split.test = gen(20);
  return split;
}

nn::Mlp trained(const data::DataSplit& split, std::uint64_t seed) {
  nn::Mlp model({6, {24, 16, 12}, 3, seed});
  nn::TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 20;
  tc.lr = 0.05;
  nn::Trainer trainer(tc);
  trainer.fit(model, split.train.images, split.train.labels);
  return model;
}

TEST(LossAware, RejectsZeroMaxBits) {
  const data::DataSplit split = make_split(1);
  nn::Mlp model({6, {12, 10, 8}, 3, 1});
  LossAwareConfig config;
  config.max_bits = 0;
  EXPECT_THROW(LossAwareAllocator(config).run(model, split.val), std::invalid_argument);
}

TEST(LossAware, ReachesTheBitBudget) {
  const data::DataSplit split = make_split(2);
  nn::Mlp model = trained(split, 2);
  LossAwareConfig config;
  config.desired_avg_bits = 2.0;
  config.eval_samples = 30;
  const LossAwareResult result = LossAwareAllocator(config).run(model, split.val);
  EXPECT_LE(result.achieved_avg_bits, 2.0);
  EXPECT_GT(result.achieved_avg_bits, 0.0);
  EXPECT_NEAR(result.achieved_avg_bits, model.bit_arrangement().average_bits(), 1e-12);
}

TEST(LossAware, CountsItsManyEvaluations) {
  const data::DataSplit split = make_split(3);
  nn::Mlp model = trained(split, 3);
  LossAwareConfig config;
  config.desired_avg_bits = 2.0;
  config.eval_samples = 30;
  const LossAwareResult result = LossAwareAllocator(config).run(model, split.val);
  // Each greedy round evaluates every candidate layer once; reaching a
  // 2.0 average from 4 bits takes many rounds — the inefficiency the
  // paper's one-shot method is contrasted with.
  EXPECT_GT(result.evaluations, 10);
}

TEST(LossAware, NeverAssignsNegativeBits) {
  const data::DataSplit split = make_split(4);
  nn::Mlp model = trained(split, 4);
  LossAwareConfig config;
  config.desired_avg_bits = 0.25;  // forces demotion down to pruning
  config.eval_samples = 30;
  const LossAwareResult result = LossAwareAllocator(config).run(model, split.val);
  EXPECT_LE(result.achieved_avg_bits, 0.25);
  for (const auto& layer : result.arrangement.layers()) {
    for (const int b : layer.filter_bits) {
      EXPECT_GE(b, 0);
      EXPECT_LE(b, 4);
    }
  }
}

TEST(LossAware, LeavesModelQuantizedWithArrangement) {
  const data::DataSplit split = make_split(5);
  nn::Mlp model = trained(split, 5);
  LossAwareConfig config;
  config.desired_avg_bits = 3.0;
  config.eval_samples = 30;
  const LossAwareResult result = LossAwareAllocator(config).run(model, split.val);
  auto scored = model.scored_layers();
  std::size_t i = 0;
  for (const auto& ref : scored) {
    for (const auto* layer : ref.layers) {
      EXPECT_EQ(layer->filter_bits(),
                std::vector<int>(result.arrangement.layers()[i].filter_bits))
          << "layer " << i;
      ++i;
    }
  }
}

TEST(LossAware, IsDeterministic) {
  const data::DataSplit split = make_split(6);
  nn::Mlp model_a = trained(split, 6);
  nn::Mlp model_b = trained(split, 6);
  LossAwareConfig config;
  config.desired_avg_bits = 2.0;
  config.eval_samples = 30;
  const LossAwareResult a = LossAwareAllocator(config).run(model_a, split.val);
  const LossAwareResult b = LossAwareAllocator(config).run(model_b, split.val);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.achieved_avg_bits, b.achieved_avg_bits);
  ASSERT_EQ(a.arrangement.layers().size(), b.arrangement.layers().size());
  for (std::size_t i = 0; i < a.arrangement.layers().size(); ++i) {
    EXPECT_EQ(a.arrangement.layers()[i].filter_bits, b.arrangement.layers()[i].filter_bits);
  }
}

TEST(LossAware, HigherBudgetKeepsMoreBits) {
  const data::DataSplit split = make_split(7);
  nn::Mlp model_low = trained(split, 7);
  nn::Mlp model_high = trained(split, 7);
  LossAwareConfig low;
  low.desired_avg_bits = 1.0;
  low.eval_samples = 30;
  LossAwareConfig high;
  high.desired_avg_bits = 3.5;
  high.eval_samples = 30;
  const LossAwareResult rl = LossAwareAllocator(low).run(model_low, split.val);
  const LossAwareResult rh = LossAwareAllocator(high).run(model_high, split.val);
  EXPECT_LT(rl.achieved_avg_bits, rh.achieved_avg_bits);
}

}  // namespace
}  // namespace cq::baselines
