#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "deploy/int_engine.h"
#include "nn/act_quant.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "quant/uniform.h"
#include "util/rng.h"

namespace cq::deploy {
namespace {

using tensor::Tensor;

TEST(BuildIntegerLayer, RejectsBiasSizeMismatch) {
  util::Rng rng(1);
  nn::Linear layer(4, 3, rng);
  layer.set_filter_bits({2, 2, 2});
  const PackedLayer packed = pack_layer(layer, "fc");
  EXPECT_THROW(build_integer_layer(packed, {0.0f, 0.0f}), std::invalid_argument);
}

TEST(BuildIntegerLayer, CodesMatchDirectEncoding) {
  util::Rng rng(2);
  nn::Linear layer(8, 4, rng);
  layer.set_filter_bits({4, 3, 0, 2});
  const PackedLayer packed = pack_layer(layer, "fc");
  const IntegerLayer integer =
      build_integer_layer(packed, std::vector<float>(4, 0.0f));

  const quant::UniformRange range{-packed.range_hi, packed.range_hi};
  for (int k = 0; k < 4; ++k) {
    const int b = layer.filter_bits()[static_cast<std::size_t>(k)];
    const auto weights = layer.filter_weights(k);
    for (int j = 0; j < 8; ++j) {
      const std::int32_t code = integer.codes[static_cast<std::size_t>(k) * 8 + j];
      if (b == 0) {
        EXPECT_EQ(code, 0);
      } else {
        EXPECT_EQ(code, quant::encode(weights[static_cast<std::size_t>(j)], range, b));
      }
    }
  }
}

TEST(BuildIntegerLayer, ReconstructedWeightsMatchDecode) {
  util::Rng rng(3);
  nn::Linear layer(10, 3, rng);
  layer.set_filter_bits({4, 2, 1});
  const PackedLayer packed = pack_layer(layer, "fc");
  const IntegerLayer integer =
      build_integer_layer(packed, std::vector<float>(3, 0.0f));

  const quant::UniformRange range{-packed.range_hi, packed.range_hi};
  for (int k = 0; k < 3; ++k) {
    const int b = integer.filter_bits[static_cast<std::size_t>(k)];
    for (int j = 0; j < 10; ++j) {
      const std::int32_t q = integer.codes[static_cast<std::size_t>(k) * 10 + j];
      const float reconstructed =
          integer.weight_scale(k) *
          static_cast<float>(2 * q - (quant::levels_for_bits(b) - 1));
      EXPECT_NEAR(reconstructed, quant::decode(q, range, b), 1e-6f)
          << "filter " << k << " weight " << j;
    }
  }
}

TEST(EncodeActivations, RejectsBadArguments) {
  const Tensor acts({2, 3});
  EXPECT_THROW(encode_activations(acts, 1.0f, 0), std::invalid_argument);
  EXPECT_THROW(encode_activations(acts, 1.0f, 17), std::invalid_argument);
  EXPECT_THROW(encode_activations(acts, 0.0f, 4), std::invalid_argument);
}

TEST(EncodeActivations, CodesStayInRangeAndRescaleBack) {
  util::Rng rng(4);
  Tensor acts = Tensor::rand_uniform({4, 16}, rng, -0.5f, 2.0f);
  const float hi = 1.5f;
  const int bits = 3;
  const ActCodes codes = encode_activations(acts, hi, bits);
  const quant::UniformRange range{0.0f, hi};
  for (std::size_t i = 0; i < acts.numel(); ++i) {
    EXPECT_GE(codes.codes[i], 0);
    EXPECT_LT(codes.codes[i], quant::levels_for_bits(bits));
    const float rescaled = codes.scale * static_cast<float>(codes.codes[i]);
    EXPECT_NEAR(rescaled, quant::quantize_one(acts[i], range, bits), 1e-6f);
  }
}

TEST(IntegerForward, RejectsGeometryMismatch) {
  util::Rng rng(5);
  nn::Linear layer(6, 2, rng);
  layer.set_filter_bits({2, 2});
  const IntegerLayer integer =
      build_integer_layer(pack_layer(layer, "fc"), {0.0f, 0.0f});
  ActCodes acts;
  acts.codes.assign(12, 0);
  acts.scale = 0.1f;
  EXPECT_THROW(integer_linear_forward(integer, acts, 2, 7), std::invalid_argument);
  EXPECT_THROW(integer_linear_forward(integer, acts, 3, 6), std::invalid_argument);
}

TEST(IntegerForward, PrunedFiltersOutputHardZeroIgnoringBias) {
  util::Rng rng(6);
  nn::Linear layer(5, 2, rng);
  layer.set_filter_bits({0, 2});
  const IntegerLayer integer =
      build_integer_layer(pack_layer(layer, "fc"), {7.5f, 0.25f});
  ActCodes acts;
  acts.codes.assign(5, 3);
  acts.scale = 0.2f;
  acts.bits = 2;
  const Tensor out = integer_linear_forward(integer, acts, 1, 5);
  EXPECT_EQ(out.at(0, 0), 0.0f);   // pruned: bias suppressed
  EXPECT_NE(out.at(0, 1), 0.0f);
}

/// The headline property: the integer MAC pipeline reproduces the
/// float fake-quant forward (quantized weights x quantized
/// activations) within float-accumulation tolerance, at every
/// bit-width combination.
class IntegerEquivalence : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(IntegerEquivalence, MatchesFakeQuantLinearForward) {
  const auto [weight_bits, act_bits] = GetParam();
  util::Rng rng(100 + static_cast<std::uint64_t>(weight_bits) * 16 + act_bits);
  const int in = 24;
  const int out_features = 10;
  const int batch = 5;

  nn::Linear layer(in, out_features, rng, "fc");
  std::vector<int> bits(out_features, weight_bits);
  bits[3] = 0;  // one pruned filter in the mix
  layer.set_filter_bits(bits);

  // Positive activations (post-ReLU), quantized by ActQuant.
  Tensor raw = Tensor::rand_uniform({batch, in}, rng, 0.0f, 1.2f);
  nn::ActQuant aq("aq");
  aq.set_max_activation(1.2f);
  aq.set_bits(act_bits);
  aq.set_training(false);
  const Tensor acts_q = aq.forward(raw);

  // Reference: float fake-quant forward on the quantized activations.
  layer.set_training(false);
  const Tensor reference = layer.forward(acts_q);

  // Integer path: packed codes + activation codes + integer MACs.
  const PackedLayer packed = pack_layer(layer, "fc");
  std::vector<float> bias(static_cast<std::size_t>(out_features));
  for (int k = 0; k < out_features; ++k) bias[static_cast<std::size_t>(k)] =
      layer.bias().value[static_cast<std::size_t>(k)];
  const IntegerLayer integer = build_integer_layer(packed, std::move(bias));
  const ActCodes codes = encode_activations(raw, 1.2f, act_bits);
  const Tensor result = integer_linear_forward(integer, codes, batch, in);

  ASSERT_EQ(result.shape(), reference.shape());
  for (std::size_t i = 0; i < result.numel(); ++i) {
    EXPECT_NEAR(result[i], reference[i], 1e-3f)
        << "w" << weight_bits << "a" << act_bits << " output " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitCombos, IntegerEquivalence,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 2}, std::pair{2, 4}, std::pair{3, 3},
                      std::pair{4, 4}, std::pair{4, 8}, std::pair{8, 8}));

TEST(IntegerConv, RejectsGeometryMismatch) {
  util::Rng rng(31);
  nn::Conv2d conv(3, 4, 3, 1, 1, rng);
  conv.set_filter_bits({2, 2, 2, 2});
  const IntegerLayer integer =
      build_integer_layer(pack_layer(conv, "conv"), std::vector<float>(4, 0.0f));
  ActCodes acts;
  acts.codes.assign(3 * 8 * 8, 1);
  acts.scale = 0.1f;
  // Wrong channel count: weights_per_filter is 3*3*3 = 27, not 4*9.
  EXPECT_THROW(integer_conv_forward(integer, acts, 1, 4, 8, 8, 3, 1, 1),
               std::invalid_argument);
  // Wrong activation volume for the declared geometry.
  EXPECT_THROW(integer_conv_forward(integer, acts, 2, 3, 8, 8, 3, 1, 1),
               std::invalid_argument);
}

class IntegerConvEquivalence : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(IntegerConvEquivalence, MatchesFakeQuantConvForward) {
  const auto [stride, pad] = GetParam();
  util::Rng rng(40 + static_cast<std::uint64_t>(stride) * 4 + pad);
  const int in_c = 3;
  const int out_c = 6;
  const int kernel = 3;
  const int h = 8;
  const int w = 8;
  const int batch = 2;

  nn::Conv2d conv(in_c, out_c, kernel, stride, pad, rng, "conv");
  conv.set_filter_bits({4, 3, 2, 1, 0, 4});

  Tensor raw = Tensor::rand_uniform({batch, in_c, h, w}, rng, 0.0f, 1.0f);
  nn::ActQuant aq("aq");
  aq.set_max_activation(1.0f);
  aq.set_bits(3);
  aq.set_training(false);
  const Tensor acts_q = aq.forward(raw);

  conv.set_training(false);
  const Tensor reference = conv.forward(acts_q);

  const PackedLayer packed = pack_layer(conv, "conv");
  std::vector<float> bias(static_cast<std::size_t>(out_c));
  for (int k = 0; k < out_c; ++k) bias[static_cast<std::size_t>(k)] =
      conv.bias().value[static_cast<std::size_t>(k)];
  const IntegerLayer integer = build_integer_layer(packed, std::move(bias));
  const ActCodes codes = encode_activations(raw, 1.0f, 3);
  const Tensor result =
      integer_conv_forward(integer, codes, batch, in_c, h, w, kernel, stride, pad);

  ASSERT_EQ(result.shape(), reference.shape());
  for (std::size_t i = 0; i < result.numel(); ++i) {
    EXPECT_NEAR(result[i], reference[i], 2e-3f)
        << "stride " << stride << " pad " << pad << " output " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, IntegerConvEquivalence,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 0},
                                           std::pair{2, 1}, std::pair{2, 0}));

TEST(IntegerForward, MixedPerFilterBitsAlsoMatch) {
  util::Rng rng(77);
  const int in = 16;
  nn::Linear layer(in, 6, rng, "fc");
  layer.set_filter_bits({4, 3, 2, 1, 0, 4});

  Tensor raw = Tensor::rand_uniform({3, in}, rng, 0.0f, 0.9f);
  nn::ActQuant aq("aq");
  aq.set_max_activation(0.9f);
  aq.set_bits(3);
  aq.set_training(false);
  const Tensor acts_q = aq.forward(raw);
  layer.set_training(false);
  const Tensor reference = layer.forward(acts_q);

  const PackedLayer packed = pack_layer(layer, "fc");
  std::vector<float> bias(6);
  for (int k = 0; k < 6; ++k) bias[static_cast<std::size_t>(k)] =
      layer.bias().value[static_cast<std::size_t>(k)];
  const IntegerLayer integer = build_integer_layer(packed, std::move(bias));
  const ActCodes codes = encode_activations(raw, 0.9f, 3);
  const Tensor result = integer_linear_forward(integer, codes, 3, in);
  for (std::size_t i = 0; i < result.numel(); ++i) {
    EXPECT_NEAR(result[i], reference[i], 1e-3f) << "output " << i;
  }
}

}  // namespace
}  // namespace cq::deploy
