#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/augment.h"
#include "util/rng.h"

namespace cq::data {
namespace {

using tensor::Tensor;

Tensor ramp_batch(int n, int c, int h, int w) {
  Tensor t({n, c, h, w});
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i % 97) * 0.1f;
  return t;
}

TEST(Augmenter, RejectsNonNchwInput) {
  Augmenter aug;
  util::Rng rng(1);
  Tensor flat({4, 9});
  EXPECT_THROW(aug.apply(flat, rng), std::invalid_argument);
}

TEST(Augmenter, DisabledConfigIsIdentity) {
  AugmentConfig config;
  config.hflip = false;
  config.pad = 0;
  config.cutout = 0;
  config.noise_stddev = 0.0f;
  Augmenter aug(config);
  util::Rng rng(2);
  const Tensor batch = ramp_batch(3, 2, 5, 5);
  const Tensor out = aug.apply(batch, rng);
  for (std::size_t i = 0; i < batch.numel(); ++i) EXPECT_EQ(out[i], batch[i]);
}

TEST(Augmenter, PreservesShape) {
  Augmenter aug({true, 2, 3, 0.1f});
  util::Rng rng(3);
  const Tensor batch = ramp_batch(4, 3, 8, 8);
  const Tensor out = aug.apply(batch, rng);
  EXPECT_EQ(out.shape(), batch.shape());
}

TEST(Augmenter, SameSeedSameOutput) {
  Augmenter aug({true, 2, 2, 0.05f});
  const Tensor batch = ramp_batch(5, 3, 6, 6);
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  const Tensor a = aug.apply(batch, rng_a);
  const Tensor b = aug.apply(batch, rng_b);
  for (std::size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Augmenter, FlipOnlyProducesIdentityOrExactMirror) {
  AugmentConfig config;
  config.hflip = true;
  config.pad = 0;
  Augmenter aug(config);
  const Tensor batch = ramp_batch(1, 1, 4, 6);
  int flipped = 0;
  int identity = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    util::Rng rng(seed);
    const Tensor out = aug.apply(batch, rng);
    bool is_identity = true;
    bool is_mirror = true;
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 6; ++x) {
        const float src = batch[static_cast<std::size_t>(y) * 6 + x];
        const float o = out[static_cast<std::size_t>(y) * 6 + x];
        const float mirrored = batch[static_cast<std::size_t>(y) * 6 + (5 - x)];
        if (o != src) is_identity = false;
        if (o != mirrored) is_mirror = false;
      }
    }
    EXPECT_TRUE(is_identity || is_mirror) << "seed " << seed;
    flipped += is_mirror && !is_identity;
    identity += is_identity;
  }
  // Both outcomes must actually occur (p(miss) < 1e-9 over 32 draws).
  EXPECT_GT(flipped, 0);
  EXPECT_GT(identity, 0);
}

TEST(Augmenter, CropKeepsPixelValuesFromSourceOrZero) {
  AugmentConfig config;
  config.hflip = false;
  config.pad = 2;
  Augmenter aug(config);
  const Tensor batch = ramp_batch(1, 1, 5, 5);
  std::set<float> source(batch.data(), batch.data() + batch.numel());
  source.insert(0.0f);  // padding
  util::Rng rng(11);
  const Tensor out = aug.apply(batch, rng);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(source.count(out[i]) > 0) << "pixel " << i;
  }
}

TEST(Augmenter, CropShiftsAreBoundedByPad) {
  // With pad=1 and a distinctive center pixel, the center can move at
  // most one step in each direction.
  AugmentConfig config;
  config.hflip = false;
  config.pad = 1;
  Augmenter aug(config);
  Tensor batch({1, 1, 5, 5});
  batch[12] = 99.0f;  // center of the 5x5
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    util::Rng rng(seed);
    const Tensor out = aug.apply(batch, rng);
    for (std::size_t i = 0; i < out.numel(); ++i) {
      if (out[i] != 99.0f) continue;
      const int y = static_cast<int>(i) / 5;
      const int x = static_cast<int>(i) % 5;
      EXPECT_LE(std::abs(y - 2), 1);
      EXPECT_LE(std::abs(x - 2), 1);
    }
  }
}

TEST(Augmenter, CutoutZeroesAtMostSideSquaredPixelsPerChannel) {
  AugmentConfig config;
  config.hflip = false;
  config.pad = 0;
  config.cutout = 2;
  Augmenter aug(config);
  Tensor batch = Tensor::full({1, 2, 6, 6}, 1.0f);
  util::Rng rng(13);
  const Tensor out = aug.apply(batch, rng);
  int zeros_c0 = 0;
  int zeros_c1 = 0;
  for (int i = 0; i < 36; ++i) {
    zeros_c0 += out[static_cast<std::size_t>(i)] == 0.0f;
    zeros_c1 += out[static_cast<std::size_t>(36 + i)] == 0.0f;
  }
  EXPECT_GT(zeros_c0, 0);
  EXPECT_LE(zeros_c0, 4);
  EXPECT_EQ(zeros_c0, zeros_c1);  // same square across channels
}

TEST(Augmenter, NoiseChangesEveryPixelSlightly) {
  AugmentConfig config;
  config.hflip = false;
  config.pad = 0;
  config.noise_stddev = 0.01f;
  Augmenter aug(config);
  const Tensor batch = Tensor::full({1, 1, 4, 4}, 0.5f);
  util::Rng rng(17);
  const Tensor out = aug.apply(batch, rng);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    EXPECT_NE(out[i], 0.5f);
    EXPECT_NEAR(out[i], 0.5f, 0.1f);
  }
}

TEST(Augmenter, AsFnIsUsableWithoutTheAugmenterAlive) {
  std::function<Tensor(const Tensor&, util::Rng&)> fn;
  {
    AugmentConfig config;
    config.hflip = false;
    config.pad = 1;
    fn = Augmenter(config).as_fn();
  }
  util::Rng rng(19);
  const Tensor batch = ramp_batch(2, 1, 4, 4);
  const Tensor out = fn(batch, rng);
  EXPECT_EQ(out.shape(), batch.shape());
}

}  // namespace
}  // namespace cq::data
