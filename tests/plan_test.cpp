#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/int_engine.h"
#include "deploy/plan.h"
#include "nn/act_quant.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/models/model.h"
#include "nn/models/resnet20.h"
#include "nn/pooling.h"
#include "nn/probe.h"
#include "serve/engine_session.h"
#include "serve_fixtures.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"

namespace cq::serve {
namespace {

using tensor::Tensor;

/// The pre-plan engine semantics, kept alive as the specification:
/// this walks the instantiated nn::Module tree with the runtime
/// activation-grid tracking the old serve::EngineSession used (PR 3),
/// driving encode_activations + the integer kernels for quantized
/// layers and module forwards for everything else. The plan
/// interpreter must reproduce it byte for byte.
class ModuleWalkReference {
 public:
  explicit ModuleWalkReference(const deploy::QuantizedArtifact& artifact)
      : model_(deploy::instantiate(artifact)) {
    std::size_t next = 0;
    for (const nn::ScoredLayerRef& ref : model_->scored_layers()) {
      for (quant::QuantizableLayer* layer : ref.layers) {
        layers_.push_back(
            deploy::build_integer_layer(artifact.packed_layers[next], bias_of(*layer)));
        integer_index_.emplace(dynamic_cast<const nn::Module*>(layer), next);
        ++next;
      }
    }
  }

  Tensor run(const Tensor& batch) {
    Grid grid;
    return exec_sequential(model_->body(), batch, grid);
  }

 private:
  struct Grid {
    float hi = 0.0f;
    int bits = 0;
    bool valid = false;
  };

  static std::vector<float> bias_of(quant::QuantizableLayer& layer) {
    nn::Parameter* bias = nullptr;
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      bias = &conv->bias();
    } else {
      bias = &dynamic_cast<nn::Linear&>(layer).bias();
    }
    const std::span<const float> values = bias->value.span();
    return {values.begin(), values.end()};
  }

  static Grid grid_after(const nn::ActQuant& aq) {
    Grid grid;
    grid.hi = aq.max_activation();
    grid.bits = aq.bits();
    grid.valid = grid.bits >= 1 && grid.bits <= 16 && grid.hi > 0.0f;
    return grid;
  }

  static void relu_inplace(Tensor& t) {
    for (float& v : t.span()) v = std::max(0.0f, v);
  }

  Tensor exec_sequential(nn::Sequential& chain, Tensor x, Grid& grid) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      x = exec_module(*chain.at(i), std::move(x), grid);
    }
    return x;
  }

  Tensor exec_module(nn::Module& module, Tensor x, Grid& grid) {
    if (auto* block = dynamic_cast<nn::BasicBlock*>(&module)) {
      return exec_block(*block, std::move(x), grid);
    }
    if (auto* chain = dynamic_cast<nn::Sequential*>(&module)) {
      return exec_sequential(*chain, std::move(x), grid);
    }
    if (auto* aq = dynamic_cast<nn::ActQuant*>(&module)) {
      Tensor out = aq->forward(x);
      grid = grid_after(*aq);
      return out;
    }
    if (dynamic_cast<nn::Conv2d*>(&module) != nullptr ||
        dynamic_cast<nn::Linear*>(&module) != nullptr) {
      Tensor out = exec_quantized(module, std::move(x), grid);
      grid.valid = false;
      return out;
    }
    if (dynamic_cast<nn::MaxPool2d*>(&module) != nullptr ||
        dynamic_cast<nn::Flatten*>(&module) != nullptr ||
        dynamic_cast<nn::Probe*>(&module) != nullptr) {
      return module.forward(x);  // value-preserving: grid survives
    }
    grid.valid = false;
    return module.forward(x);
  }

  Tensor exec_quantized(nn::Module& module, Tensor x, const Grid& grid) {
    const auto it = integer_index_.find(&module);
    if (it == integer_index_.end() || !grid.valid) {
      return module.forward(x);
    }
    const deploy::IntegerLayer& layer = layers_[it->second];
    deploy::encode_activations_into(x, grid.hi, grid.bits, scratch_);
    const int batch = x.dim(0);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&module)) {
      return deploy::integer_conv_forward(layer, scratch_, batch, conv->in_channels(),
                                          x.dim(2), x.dim(3), conv->kernel(),
                                          conv->stride(), conv->pad());
    }
    auto& fc = dynamic_cast<nn::Linear&>(module);
    return deploy::integer_linear_forward(layer, scratch_, batch, fc.in_features());
  }

  Tensor exec_block(nn::BasicBlock& block, Tensor x, Grid& grid) {
    const Grid entry_grid = grid;
    Tensor h = exec_quantized(*block.conv1(), x, entry_grid);
    h = block.bn1()->forward(h);
    relu_inplace(h);
    h = block.probe1()->forward(h);
    h = block.act_quant1()->forward(h);
    const Grid mid_grid = grid_after(*block.act_quant1());
    Tensor main = exec_quantized(*block.conv2(), std::move(h), mid_grid);
    main = block.bn2()->forward(main);
    if (block.downsample_conv() != nullptr) {
      Tensor shortcut = exec_quantized(*block.downsample_conv(), std::move(x), entry_grid);
      shortcut = block.downsample_bn()->forward(shortcut);
      main += shortcut;
    } else {
      main += x;
    }
    relu_inplace(main);
    main = block.probe2()->forward(main);
    Tensor out = block.act_quant2()->forward(main);
    grid = grid_after(*block.act_quant2());
    return out;
  }

  std::unique_ptr<nn::Model> model_;
  std::vector<deploy::IntegerLayer> layers_;
  std::unordered_map<const nn::Module*, std::size_t> integer_index_;
  deploy::ActCodes scratch_;
};

deploy::QuantizedArtifact artifact_for(int which) {
  return which == 0 ? tiny_vgg_artifact()
                    : which == 1 ? tiny_mlp_artifact() : tiny_resnet_artifact();
}

bool byte_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

/// The headline property: across all three zoo models, batch sizes
/// {1, 3, 8} and intra-op thread counts {1, 2, 8}, the plan
/// interpreter is byte-identical to the module-walking pre-plan engine
/// semantics, and within float-accumulation tolerance of the
/// fake-quant float reference (the integer kernels reassociate the
/// per-output reduction, so bit-equality against the *float* model is
/// not attainable — byte-identity is asserted against the module-walk
/// executor, tolerance against the float forward).
class PlanVsModule : public ::testing::TestWithParam<int> {};

TEST_P(PlanVsModule, ByteIdenticalAcrossBatchSizesAndThreadCounts) {
  const deploy::QuantizedArtifact artifact = artifact_for(GetParam());
  ModuleWalkReference module_walk(artifact);
  auto float_reference = deploy::instantiate(artifact);
  const auto plan =
      std::make_shared<const deploy::ExecutionPlan>(deploy::compile_plan(artifact));

  for (const int batch_size : {1, 3, 8}) {
    const Tensor batch = random_batch(plan->sample_shape(), batch_size,
                                      900 + static_cast<std::uint64_t>(batch_size));
    const Tensor want = module_walk.run(batch);
    const Tensor float_want = float_reference->forward(batch);

    for (const int threads : {1, 2, 8}) {
      std::unique_ptr<util::ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads - 1);
      // Every cell shares the one compiled plan — this puts the
      // shared-plan ctor under the full matrix (the artifact ctor is
      // covered by PrecompiledPlanMatchesArtifactConstructor) and
      // avoids nine recompiles per architecture.
      EngineSession session(plan, 1, util::ExecContext{pool.get(), threads});
      const Tensor got = session.run(batch);
      EXPECT_TRUE(byte_equal(got, want))
          << "model " << GetParam() << " batch " << batch_size << " threads "
          << threads << " diverges from the module-walk reference";
      ASSERT_EQ(got.shape(), float_want.shape());
      for (std::size_t i = 0; i < got.numel(); ++i) {
        EXPECT_NEAR(got[i], float_want[i], 5e-3f)
            << "model " << GetParam() << " batch " << batch_size << " threads "
            << threads << " output " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, PlanVsModule, ::testing::Values(0, 1, 2));

/// Concurrent run() calls on shared contexts must also stay
/// byte-identical to the module walk (the TSan lane runs this at 8
/// submitter threads over 4 contexts with an intra-op pool).
TEST(PlanVsModuleConcurrent, EightSubmittersStayByteIdentical) {
  const deploy::QuantizedArtifact artifact = tiny_vgg_artifact();
  ModuleWalkReference module_walk(artifact);
  util::ThreadPool intra(2);
  EngineSession session(artifact, 4, util::ExecContext{&intra, 3});

  constexpr int kThreads = 8;
  constexpr int kRepeats = 3;
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (int t = 0; t < kThreads; ++t) {
    inputs.push_back(random_batch(session.sample_shape(), 2,
                                  700 + static_cast<std::uint64_t>(t)));
    expected.push_back(module_walk.run(inputs.back()));
  }

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRepeats; ++r) {
        const Tensor out = session.run(inputs[static_cast<std::size_t>(t)]);
        if (!byte_equal(out, expected[static_cast<std::size_t>(t)])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(PlanCompile, PrecompiledPlanMatchesArtifactConstructor) {
  const deploy::QuantizedArtifact artifact = tiny_resnet_artifact();
  EngineSession from_artifact(artifact);
  EngineSession from_plan(deploy::compile_plan(artifact));
  const Tensor batch = random_batch(from_artifact.sample_shape(), 4, 41);
  EXPECT_TRUE(byte_equal(from_artifact.run(batch), from_plan.run(batch)));
}

std::map<deploy::OpKind, int> kind_histogram(const deploy::ExecutionPlan& plan) {
  std::map<deploy::OpKind, int> hist;
  for (const deploy::PlanOp& op : plan.ops()) ++hist[op.kind];
  return hist;
}

TEST(PlanCompile, VggLowersToTheExpectedOpMix) {
  const deploy::ExecutionPlan plan = deploy::compile_plan(tiny_vgg_artifact());
  auto hist = kind_histogram(plan);
  // conv0 is the unquantized stem; conv1-4 + fc5-7 run integer.
  EXPECT_EQ(hist[deploy::OpKind::FloatConv], 1);
  EXPECT_EQ(hist[deploy::OpKind::IntConv], 4);
  EXPECT_EQ(hist[deploy::OpKind::IntLinear], 3);
  EXPECT_EQ(hist[deploy::OpKind::FloatLinear], 1);  // output head
  EXPECT_EQ(hist[deploy::OpKind::MaxPool], 3);
  EXPECT_EQ(hist[deploy::OpKind::Flatten], 1);
  EXPECT_EQ(hist[deploy::OpKind::BatchNorm], 5);
  EXPECT_EQ(hist[deploy::OpKind::EncodeAct], 8);  // every calibrated quantizer
  EXPECT_EQ(hist[deploy::OpKind::Add], 0);
  EXPECT_EQ(plan.integer_layers().size(), 7u);
  EXPECT_EQ(plan.num_classes(), 4);
  EXPECT_EQ(plan.sample_shape(), (tensor::Shape{3, 8, 8}));
}

TEST(PlanCompile, ResNetLowersResidualsToAddOps) {
  const deploy::ExecutionPlan plan = deploy::compile_plan(tiny_resnet_artifact());
  auto hist = kind_histogram(plan);
  EXPECT_EQ(hist[deploy::OpKind::Add], 9);      // 3 stages x 3 blocks
  EXPECT_EQ(hist[deploy::OpKind::AvgPool], 1);  // global average pool
  EXPECT_EQ(hist[deploy::OpKind::FloatConv], 1);  // stem
  // 18 block convs + 2 projection shortcuts run integer.
  EXPECT_EQ(hist[deploy::OpKind::IntConv], 20);
  EXPECT_EQ(plan.integer_layers().size(), 20u);
}

TEST(PlanCompile, ArenaIsLifetimePlannedAndSlotsStayInBounds) {
  for (const int which : {0, 1, 2}) {
    const deploy::ExecutionPlan plan = deploy::compile_plan(artifact_for(which));
    ASSERT_GT(plan.arena_bytes(), 0u);
    std::size_t total = 0;
    for (const deploy::PlanOp& op : plan.ops()) {
      for (const int slot : {op.in0, op.in1, op.out}) {
        if (slot < 0) continue;
        const deploy::PlanSlot& s = plan.slots()[static_cast<std::size_t>(slot)];
        EXPECT_LE(s.offset + s.numel, plan.arena_floats())
            << "model " << which << " slot " << slot << " exceeds the arena";
      }
      total += plan.slots()[static_cast<std::size_t>(op.out)].numel;
    }
    // Lifetime reuse must beat the no-reuse layout (one fresh buffer
    // per op output) by a wide margin.
    EXPECT_LT(plan.arena_floats(), total) << "model " << which;
  }
}

}  // namespace
}  // namespace cq::serve
