#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "data/cifar10.h"
#include "data/synthetic.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"

namespace cq::data {
namespace {

SyntheticVisionConfig tiny_config() {
  SyntheticVisionConfig cfg;
  cfg.num_classes = 4;
  cfg.image_size = 8;
  cfg.train_per_class = 10;
  cfg.val_per_class = 5;
  cfg.test_per_class = 5;
  return cfg;
}

TEST(Dataset, NumClassesAndClassIndices) {
  Dataset d;
  d.images = Tensor({4, 2});
  d.labels = {0, 2, 2, 1};
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.indices_of_class(2), (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(d.indices_of_class(5).empty());
}

TEST(Dataset, SubsetCopiesRows) {
  Dataset d;
  d.images = Tensor({3, 2}, {1, 2, 3, 4, 5, 6});
  d.labels = {7, 8, 9};
  const Dataset s = d.subset({2, 0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FLOAT_EQ(s.images.at(0, 0), 5.0f);
  EXPECT_EQ(s.labels[0], 9);
  EXPECT_EQ(s.labels[1], 7);
}

TEST(Dataset, TakeLimitsCount) {
  Dataset d;
  d.images = Tensor({5, 1});
  d.labels = {0, 1, 2, 3, 4};
  EXPECT_EQ(d.take(3).size(), 3u);
  EXPECT_EQ(d.take(99).size(), 5u);
}

TEST(Dataset, StratifiedTakeBalancesClasses) {
  // Class-major storage: 6 of class 0, then 6 of class 1.
  Dataset d;
  d.images = Tensor({12, 1});
  d.labels = {0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
  const Dataset s = d.stratified_take(6);
  int c0 = 0;
  for (const int l : s.labels) c0 += (l == 0);
  EXPECT_EQ(c0, 3);
  EXPECT_EQ(s.size(), 6u);
}

TEST(Synthetic, ShapesAndLabelRanges) {
  const DataSplit split = make_synthetic_vision(tiny_config());
  EXPECT_EQ(split.train.size(), 40u);
  EXPECT_EQ(split.val.size(), 20u);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.images.shape(), (tensor::Shape{40, 3, 8, 8}));
  EXPECT_EQ(split.train.num_classes(), 4);
  for (const int l : split.train.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  const DataSplit a = make_synthetic_vision(tiny_config());
  const DataSplit b = make_synthetic_vision(tiny_config());
  EXPECT_TRUE(a.train.images.allclose(b.train.images));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticVisionConfig cfg = tiny_config();
  const DataSplit a = make_synthetic_vision(cfg);
  cfg.seed = 1234;
  const DataSplit b = make_synthetic_vision(cfg);
  EXPECT_FALSE(a.train.images.allclose(b.train.images));
}

TEST(Synthetic, ClassesAreSeparated) {
  // Per-class mean images must differ far more between classes than
  // the sampling noise within a class — otherwise nothing is learnable.
  const DataSplit split = make_synthetic_vision(tiny_config());
  const auto& d = split.train;
  const std::size_t sample = d.images.numel() / d.size();
  std::vector<std::vector<double>> means(4, std::vector<double>(sample, 0.0));
  std::vector<int> counts(4, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const int c = d.labels[i];
    ++counts[static_cast<std::size_t>(c)];
    for (std::size_t p = 0; p < sample; ++p) {
      means[static_cast<std::size_t>(c)][p] += d.images[i * sample + p];
    }
  }
  for (int c = 0; c < 4; ++c) {
    for (auto& v : means[static_cast<std::size_t>(c)]) v /= counts[static_cast<std::size_t>(c)];
  }
  double min_dist = 1e30;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      double dist = 0.0;
      for (std::size_t p = 0; p < sample; ++p) {
        const double diff = means[static_cast<std::size_t>(a)][p] - means[static_cast<std::size_t>(b)][p];
        dist += diff * diff;
      }
      min_dist = std::min(min_dist, std::sqrt(dist));
    }
  }
  EXPECT_GT(min_dist, 1.0);
}

TEST(Synthetic, LearnableByMlp) {
  SyntheticVisionConfig cfg = tiny_config();
  cfg.train_per_class = 40;
  const DataSplit split = make_synthetic_vision(cfg);
  const int features = 3 * 8 * 8;
  nn::Mlp model({features, {32}, 4, 1});
  const Tensor flat_train = split.train.images.reshape(
      {static_cast<int>(split.train.size()), features});
  nn::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 20;
  tc.lr = 0.02;
  nn::Trainer trainer(tc);
  trainer.fit(model, flat_train, split.train.labels);
  const Tensor flat_test =
      split.test.images.reshape({static_cast<int>(split.test.size()), features});
  EXPECT_GT(nn::Trainer::evaluate(model, flat_test, split.test.labels), 0.7);
}

TEST(Synthetic, PresetsMatchPaperClassCounts) {
  EXPECT_EQ(synthetic_cifar10_like().num_classes, 10);
  EXPECT_EQ(synthetic_cifar100_like().num_classes, 100);
}

TEST(Cifar10, LoadsWellFormedBatch) {
  const std::string path = testing::TempDir() + "/cifar_batch.bin";
  {
    std::ofstream out(path, std::ios::binary);
    // Two records: label 3 with all-128 pixels, label 9 with all-0.
    std::vector<unsigned char> rec(3073, 128);
    rec[0] = 3;
    out.write(reinterpret_cast<const char*>(rec.data()), 3073);
    std::fill(rec.begin(), rec.end(), 0);
    rec[0] = 9;
    out.write(reinterpret_cast<const char*>(rec.data()), 3073);
  }
  EXPECT_TRUE(is_cifar10_batch(path));
  const Dataset d = load_cifar10_batch(path);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.labels[0], 3);
  EXPECT_EQ(d.labels[1], 9);
  EXPECT_EQ(d.images.shape(), (tensor::Shape{2, 3, 32, 32}));
  // 128/255 normalized by channel-0 stats.
  EXPECT_NEAR(d.images.at(0, 0, 0, 0), (128.0f / 255.0f - 0.4914f) / 0.2470f, 1e-4);
}

TEST(Cifar10, MaxRecordsLimits) {
  const std::string path = testing::TempDir() + "/cifar_batch2.bin";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<unsigned char> rec(3073, 1);
    for (int i = 0; i < 3; ++i) out.write(reinterpret_cast<const char*>(rec.data()), 3073);
  }
  EXPECT_EQ(load_cifar10_batch(path, 2).size(), 2u);
}

TEST(Cifar10, RejectsMalformedFile) {
  const std::string path = testing::TempDir() + "/not_cifar.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(is_cifar10_batch(path));
  EXPECT_THROW(load_cifar10_batch(path), std::runtime_error);
  EXPECT_THROW(load_cifar10_batch("/nonexistent/file.bin"), std::runtime_error);
}

}  // namespace
}  // namespace cq::data
