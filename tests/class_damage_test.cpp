#include <gtest/gtest.h>

#include <cmath>

#include "core/class_damage.h"
#include "core/importance.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"
#include "util/stats.h"

namespace cq::core {
namespace {

data::DataSplit make_split(std::uint64_t seed) {
  util::Rng rng(seed);
  auto gen = [&](int per_class) {
    data::Dataset d;
    const int n = 3 * per_class;
    d.images = nn::Tensor({n, 6});
    d.labels.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int cls = i / per_class;
      for (int f = 0; f < 6; ++f) {
        d.images.at(i, f) = static_cast<float>(rng.normal(f % 3 == cls ? 1.5 : 0.0, 0.4));
      }
      d.labels[static_cast<std::size_t>(i)] = cls;
    }
    return d;
  };
  data::DataSplit split;
  split.train = gen(40);
  split.val = gen(15);
  split.test = gen(25);
  return split;
}

nn::Mlp trained(const data::DataSplit& split, std::uint64_t seed) {
  nn::Mlp model({6, {24, 16, 12}, 3, seed});
  nn::TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 20;
  tc.lr = 0.05;
  nn::Trainer(tc).fit(model, split.train.images, split.train.labels);
  return model;
}

TEST(Spearman, PerfectAndInverseOrderings) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> up = {10, 20, 30, 40, 50};
  const std::vector<double> down = {5, 4, 3, 2, 1};
  EXPECT_NEAR(util::spearman(a, up), 1.0, 1e-12);
  EXPECT_NEAR(util::spearman(a, down), -1.0, 1e-12);
}

TEST(Spearman, TiesAndDegenerateInputs) {
  const std::vector<double> a = {1, 1, 2, 2};
  const std::vector<double> b = {3, 3, 7, 7};
  EXPECT_NEAR(util::spearman(a, b), 1.0, 1e-12);
  const std::vector<double> constant = {4, 4, 4, 4};
  EXPECT_EQ(util::spearman(a, constant), 0.0);
  EXPECT_EQ(util::spearman(std::vector<double>{}, std::vector<double>{}), 0.0);
  const std::vector<double> one = {1};
  EXPECT_EQ(util::spearman(one, one), 0.0);
}

TEST(KeepClassScores, OffByDefaultAndOnWhenRequested) {
  const data::DataSplit split = make_split(1);
  nn::Mlp model = trained(split, 1);

  ImportanceConfig off;
  off.samples_per_class = 10;
  const auto plain = ImportanceCollector(off).collect(model, split.val);
  for (const LayerScores& layer : plain) EXPECT_TRUE(layer.class_filter_beta.empty());

  ImportanceConfig on = off;
  on.keep_class_scores = true;
  const auto kept = ImportanceCollector(on).collect(model, split.val);
  for (const LayerScores& layer : kept) {
    ASSERT_EQ(layer.class_filter_beta.size(), 3u);
    for (const auto& row : layer.class_filter_beta) {
      EXPECT_EQ(row.size(), layer.filter_phi.size());
      for (const float beta : row) {
        EXPECT_GE(beta, 0.0f);
        EXPECT_LE(beta, 1.0f);
      }
    }
  }
}

TEST(KeepClassScores, ClassSumDominatesPhi) {
  // phi = max_s sum_m beta(neuron) <= sum_m max_s beta(neuron): the
  // per-class filter betas must sum to at least phi on every filter.
  const data::DataSplit split = make_split(2);
  nn::Mlp model = trained(split, 2);
  ImportanceConfig cfg;
  cfg.samples_per_class = 10;
  cfg.keep_class_scores = true;
  const auto scores = ImportanceCollector(cfg).collect(model, split.val);
  for (const LayerScores& layer : scores) {
    for (std::size_t k = 0; k < layer.filter_phi.size(); ++k) {
      float sum = 0.0f;
      for (const auto& row : layer.class_filter_beta) sum += row[k];
      EXPECT_GE(sum + 1e-5f, layer.filter_phi[k]) << layer.name << " filter " << k;
    }
  }
}

TEST(ClassDamage, RequiresClassMatrices) {
  const data::DataSplit split = make_split(3);
  nn::Mlp model = trained(split, 3);
  auto quant = model.clone();
  ImportanceConfig cfg;
  cfg.samples_per_class = 10;
  const auto scores = ImportanceCollector(cfg).collect(model, split.val);
  EXPECT_THROW(analyze_class_damage(model, *quant, scores, split.test),
               std::invalid_argument);
}

TEST(ClassDamage, UnquantizedModelRetainsEverythingAndDropsNothing) {
  const data::DataSplit split = make_split(4);
  nn::Mlp model = trained(split, 4);
  auto quant = model.clone();
  ImportanceConfig cfg;
  cfg.samples_per_class = 10;
  cfg.keep_class_scores = true;
  const auto scores = ImportanceCollector(cfg).collect(model, split.val);

  const ClassDamageReport report =
      analyze_class_damage(model, *quant, scores, split.test);
  ASSERT_EQ(report.retained_importance.size(), 3u);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(report.retained_importance[static_cast<std::size_t>(m)], 1.0);
    EXPECT_NEAR(report.accuracy_drop[static_cast<std::size_t>(m)], 0.0, 1e-12);
  }
}

TEST(ClassDamage, RetainedImportanceMatchesHandComputation) {
  const data::DataSplit split = make_split(5);
  nn::Mlp model = trained(split, 5);
  auto quant = model.clone();
  ImportanceConfig cfg;
  cfg.samples_per_class = 10;
  cfg.keep_class_scores = true;
  const auto scores = ImportanceCollector(cfg).collect(model, split.val);

  // Known pattern: alternate 4/0 bits on the first scored layer, full
  // 4 bits on the second.
  auto scored = quant->scored_layers();
  ASSERT_EQ(scored.size(), 2u);
  const int filters = scored[0].layers.front()->num_filters();
  std::vector<int> bits(static_cast<std::size_t>(filters));
  for (int k = 0; k < filters; ++k) bits[static_cast<std::size_t>(k)] = k % 2 == 0 ? 4 : 0;
  scored[0].layers.front()->set_filter_bits(bits);
  scored[1].layers.front()->set_filter_bits(std::vector<int>(
      static_cast<std::size_t>(scored[1].layers.front()->num_filters()), 4));

  const ClassDamageReport report =
      analyze_class_damage(model, *quant, scores, split.test);
  for (int m = 0; m < 3; ++m) {
    double total = 0.0;
    double kept = 0.0;
    const auto& beta = scores[0].class_filter_beta[static_cast<std::size_t>(m)];
    for (int k = 0; k < filters; ++k) {
      total += beta[static_cast<std::size_t>(k)];
      kept += beta[static_cast<std::size_t>(k)] * (k % 2 == 0 ? 1.0 : 0.0);
    }
    for (const float b2 : scores[1].class_filter_beta[static_cast<std::size_t>(m)]) {
      total += b2;
      kept += b2;  // every filter of layer 2 keeps max bits
    }
    const double expected = total > 0.0 ? kept / total : 1.0;
    EXPECT_NEAR(report.retained_importance[static_cast<std::size_t>(m)], expected, 1e-9);
    EXPECT_GE(report.retained_importance[static_cast<std::size_t>(m)], 0.0);
    EXPECT_LE(report.retained_importance[static_cast<std::size_t>(m)], 1.0);
  }
  EXPECT_GE(report.rank_correlation, -1.0);
  EXPECT_LE(report.rank_correlation, 1.0);
}

TEST(ClassDamage, DropsAreConsistentWithPerClassAccuracies) {
  const data::DataSplit split = make_split(6);
  nn::Mlp model = trained(split, 6);
  auto quant = model.clone();
  ImportanceConfig cfg;
  cfg.samples_per_class = 10;
  cfg.keep_class_scores = true;
  const auto scores = ImportanceCollector(cfg).collect(model, split.val);
  for (const auto& ref : quant->scored_layers()) {
    for (auto* layer : ref.layers) {
      layer->set_filter_bits(
          std::vector<int>(static_cast<std::size_t>(layer->num_filters()), 1));
    }
  }
  const ClassDamageReport report =
      analyze_class_damage(model, *quant, scores, split.test);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_NEAR(report.accuracy_drop[m], report.fp_accuracy[m] - report.quant_accuracy[m],
                1e-12);
  }
}

}  // namespace
}  // namespace cq::core
