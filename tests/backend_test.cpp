// The backend seam's contract tests.
//
// BackendIdentity pins the load-bearing invariant of deploy::Backend:
// every backend produces byte-identical outputs to the scalar
// reference — at the kernel level over randomized shapes (pruned
// 0-bit filter rows, filter counts off the panel-tile boundary, batch
// and thread sweeps) and at the plan level over the model zoo through
// serve::EngineSession. Runs in the TSan and ASan/UBSan CI lanes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "deploy/backend.h"
#include "deploy/cpu_features.h"
#include "deploy/int_engine.h"
#include "deploy/plan.h"
#include "serve/engine_session.h"
#include "serve_fixtures.h"
#include "tensor/tensor.h"
#include "util/exec_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cq::deploy {
namespace {

using tensor::Tensor;

/// Random IntegerLayer with a mixed bit pattern including pruned
/// (0-bit) rows — the filter arrangement real CQ artifacts have.
IntegerLayer random_integer_layer(int num_filters, std::int64_t per_filter,
                                  util::Rng& rng) {
  IntegerLayer layer;
  layer.num_filters = num_filters;
  layer.weights_per_filter = per_filter;
  layer.range_hi = 0.8f;
  const int pattern[7] = {2, 3, 0, 1, 4, 2, 0};
  layer.filter_bits.resize(static_cast<std::size_t>(num_filters));
  layer.codes.assign(static_cast<std::size_t>(num_filters) * per_filter, 0);
  layer.bias.resize(static_cast<std::size_t>(num_filters));
  for (int k = 0; k < num_filters; ++k) {
    const int b = pattern[k % 7];
    layer.filter_bits[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(b);
    layer.bias[static_cast<std::size_t>(k)] =
        static_cast<float>(rng.uniform(-0.5, 0.5));
    if (b == 0) continue;
    const int levels = 1 << b;
    std::int32_t* row = layer.codes.data() + static_cast<std::size_t>(k) * per_filter;
    for (std::int64_t j = 0; j < per_filter; ++j) {
      row[j] = static_cast<std::int32_t>(rng.uniform_int(0, levels - 1));
    }
  }
  return layer;
}

ActCodes random_act_codes(std::size_t count, int bits, util::Rng& rng) {
  ActCodes acts;
  acts.bits = bits;
  const int levels = 1 << bits;
  acts.scale = 0.9f / static_cast<float>(levels - 1);
  acts.codes.resize(count);
  for (std::int32_t& c : acts.codes) {
    c = static_cast<std::int32_t>(rng.uniform_int(0, levels - 1));
  }
  return acts;
}

/// ExecContext with `threads` participants (pool of threads - 1).
struct ThreadedExec {
  explicit ThreadedExec(int threads)
      : pool(threads > 1 ? std::make_unique<util::ThreadPool>(threads - 1) : nullptr),
        exec{pool.get(), threads} {}
  std::unique_ptr<util::ThreadPool> pool;
  util::ExecContext exec;
};

void expect_bytes_equal(const float* a, const float* b, std::size_t n,
                        const std::string& what) {
  ASSERT_EQ(0, std::memcmp(a, b, n * sizeof(float))) << what;
}

// Filter counts straddling the kFilterTile = 8 panel boundary (odd,
// exact multiple, one past) so tail tiles and full tiles both run.
TEST(BackendIdentity, BlockedConvMatchesScalarOverShapes) {
  struct Shape {
    int in_c, hw, filters, kernel, stride, pad;
  };
  const Shape shapes[] = {
      {3, 9, 5, 3, 1, 1},    // tiny, tail tile only
      {8, 12, 16, 3, 1, 1},  // exact tile multiple
      {6, 10, 17, 3, 2, 0},  // one past a tile boundary, strided, no pad
      {4, 7, 13, 5, 1, 2},   // odd everything, large kernel
  };
  util::Rng rng(101);
  for (const Shape& s : shapes) {
    const std::int64_t per_filter =
        static_cast<std::int64_t>(s.in_c) * s.kernel * s.kernel;
    const IntegerLayer layer = random_integer_layer(s.filters, per_filter, rng);
    const blocked::PackedCodes packed = blocked::pack_codes(layer);
    ASSERT_TRUE(packed.usable);
    for (const int batch : {1, 3, 8}) {
      const ActCodes acts = random_act_codes(
          static_cast<std::size_t>(batch) * s.in_c * s.hw * s.hw, 3, rng);
      const Tensor reference = integer_conv_forward(
          layer, acts, batch, s.in_c, s.hw, s.hw, s.kernel, s.stride, s.pad);
      for (const int threads : {1, 2, 8}) {
        ThreadedExec te(threads);
        std::vector<float> out(reference.numel());
        std::vector<std::int32_t> cols;
        blocked::conv_forward_into(packed, acts, batch, s.in_c, s.hw, s.hw, s.kernel,
                                   s.stride, s.pad, out.data(), cols, te.exec);
        expect_bytes_equal(out.data(), reference.data(), reference.numel(),
                           "conv filters=" + std::to_string(s.filters) +
                               " batch=" + std::to_string(batch) +
                               " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(BackendIdentity, BlockedLinearMatchesScalarOverShapes) {
  util::Rng rng(202);
  for (const int filters : {1, 8, 13, 24, 33}) {
    const int in_features = 50 + filters;
    const IntegerLayer layer = random_integer_layer(filters, in_features, rng);
    const blocked::PackedCodes packed = blocked::pack_codes(layer);
    ASSERT_TRUE(packed.usable);
    for (const int batch : {1, 3, 8}) {
      const ActCodes acts = random_act_codes(
          static_cast<std::size_t>(batch) * in_features, 4, rng);
      const Tensor reference =
          integer_linear_forward(layer, acts, batch, in_features);
      for (const int threads : {1, 2, 8}) {
        ThreadedExec te(threads);
        std::vector<float> out(reference.numel());
        blocked::linear_forward_into(packed, acts, batch, in_features, out.data(),
                                     te.exec);
        expect_bytes_equal(out.data(), reference.data(), reference.numel(),
                           "linear filters=" + std::to_string(filters) +
                               " batch=" + std::to_string(batch) +
                               " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(BackendIdentity, PrunedRowsAreHardZero) {
  util::Rng rng(303);
  IntegerLayer layer = random_integer_layer(9, 18, rng);
  // Force every filter pruned: outputs must be exactly 0.0f (not
  // bias), matching the fake-quant semantics of 0-bit filters.
  std::fill(layer.filter_bits.begin(), layer.filter_bits.end(), std::uint8_t{0});
  std::fill(layer.codes.begin(), layer.codes.end(), 0);
  const blocked::PackedCodes packed = blocked::pack_codes(layer);
  const ActCodes acts = random_act_codes(3 * 18, 4, rng);
  std::vector<float> out(3 * 9, -1.0f);
  blocked::linear_forward_into(packed, acts, 3, 18, out.data());
  for (const float v : out) {
    EXPECT_EQ(0.0f, v);
    EXPECT_FALSE(std::signbit(v));  // hard +0.0f, byte-identical to std::fill(0.0f)
  }
}

TEST(BackendIdentity, HighBitLayersFallBackToScalar) {
  util::Rng rng(404);
  IntegerLayer layer = random_integer_layer(4, 10, rng);
  layer.filter_bits[2] = 16;  // centered codes would overflow int16
  const blocked::PackedCodes packed = blocked::pack_codes(layer);
  EXPECT_FALSE(packed.usable);
  const ActCodes acts = random_act_codes(10, 4, rng);
  std::vector<float> out(4);
  EXPECT_THROW(blocked::linear_forward_into(packed, acts, 1, 10, out.data()),
               std::logic_error);
}

/// The acceptance gate: scalar and blocked sessions over the three zoo
/// artifacts produce byte-identical logits at every batch size and
/// thread count.
TEST(BackendIdentity, ZooPlansByteIdenticalAcrossBackends) {
  const deploy::QuantizedArtifact artifacts[] = {serve::tiny_vgg_artifact(),
                                                 serve::tiny_mlp_artifact(),
                                                 serve::tiny_resnet_artifact()};
  for (const deploy::QuantizedArtifact& artifact : artifacts) {
    const auto plan =
        std::make_shared<const ExecutionPlan>(compile_plan(artifact));
    for (const int threads : {1, 2, 8}) {
      ThreadedExec te(threads);
      serve::EngineSession scalar(plan, 2, te.exec,
                                  make_backend(BackendKind::Scalar));
      serve::EngineSession blocked_session(plan, 2, te.exec,
                                           make_backend(BackendKind::Blocked));
      for (const int batch : {1, 3, 8}) {
        const Tensor input = serve::random_batch(
            plan->sample_shape(), batch,
            1000 + static_cast<std::uint64_t>(batch) * 7 + threads);
        const Tensor a = scalar.run(input);
        const Tensor b = blocked_session.run(input);
        ASSERT_EQ(a.shape(), b.shape());
        expect_bytes_equal(a.data(), b.data(), a.numel(),
                           artifact.arch.kind + " batch=" + std::to_string(batch) +
                               " threads=" + std::to_string(threads));
      }
    }
  }
}

/// Backend::run's contract is concurrent safety: the prepare()-built
/// packed panels are shared read-only state, and this is the test that
/// actually reads them from many threads at once (the TSan CI lane
/// would otherwise never see concurrent BlockedBackend execution).
TEST(BackendIdentity, ConcurrentBlockedRunsMatchScalar) {
  const deploy::QuantizedArtifact artifact = serve::tiny_resnet_artifact();
  const auto plan = std::make_shared<const ExecutionPlan>(compile_plan(artifact));
  serve::EngineSession scalar(plan, 1);
  serve::EngineSession blocked_session(plan, 3, {},
                                       make_backend(BackendKind::Blocked));
  constexpr int kSubmitters = 6;
  constexpr int kRounds = 4;
  std::vector<Tensor> inputs, expected;
  for (int i = 0; i < kSubmitters; ++i) {
    inputs.push_back(serve::random_batch(plan->sample_shape(), 3,
                                         500 + static_cast<std::uint64_t>(i)));
    expected.push_back(scalar.run(inputs.back()));
  }
  std::vector<int> mismatches(kSubmitters, 0);
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kSubmitters; ++i) {
      threads.emplace_back([&, i] {
        for (int r = 0; r < kRounds; ++r) {
          const Tensor out = blocked_session.run(inputs[static_cast<std::size_t>(i)]);
          if (std::memcmp(out.data(), expected[static_cast<std::size_t>(i)].data(),
                          out.numel() * sizeof(float)) != 0) {
            ++mismatches[static_cast<std::size_t>(i)];
          }
        }
      });
    }
  }
  for (int i = 0; i < kSubmitters; ++i) {
    EXPECT_EQ(0, mismatches[static_cast<std::size_t>(i)]) << "submitter " << i;
  }
}

TEST(BackendFactory, NamesParseAndConstruct) {
  for (const BackendKind kind : all_backend_kinds()) {
    EXPECT_EQ(kind, parse_backend_kind(backend_kind_name(kind)));
    const auto backend = make_backend(kind);
    EXPECT_STREQ(backend_kind_name(kind), backend->name());
  }
  EXPECT_THROW(parse_backend_kind("turbo"), std::invalid_argument);
  try {
    parse_backend_kind("turbo");
  } catch (const std::invalid_argument& e) {
    // A typo'd --backend must name every valid option.
    EXPECT_NE(std::string(e.what()).find("scalar"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("blocked"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("simd"), std::string::npos);
  }
}

TEST(BackendFactory, UnknownKindErrorNamesValidKinds) {
  try {
    // 3 is inside the enum's value range but names no backend.
    make_backend(static_cast<BackendKind>(3));
    FAIL() << "unknown BackendKind accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const BackendKind kind : all_backend_kinds()) {
      EXPECT_NE(what.find(backend_kind_name(kind)), std::string::npos) << what;
    }
  }
}

TEST(BackendFactory, DispatchNamesPerOp) {
  const ExecutionPlan plan = compile_plan(serve::tiny_vgg_artifact());
  const auto scalar = make_backend(BackendKind::Scalar);
  const auto blocked_backend = make_backend(BackendKind::Blocked);
  scalar->prepare(plan);
  blocked_backend->prepare(plan);
  bool saw_integer = false, saw_other = false;
  for (const PlanOp& op : plan.ops()) {
    EXPECT_STREQ("scalar", scalar->dispatch(op));
    if (op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear) {
      saw_integer = true;
      EXPECT_STREQ("blocked", blocked_backend->dispatch(op));
    } else {
      saw_other = true;
      EXPECT_STREQ("scalar", blocked_backend->dispatch(op));
    }
  }
  EXPECT_TRUE(saw_integer);
  EXPECT_TRUE(saw_other);
}

TEST(BackendFactory, RunWithoutPrepareThrows) {
  const ExecutionPlan plan = compile_plan(serve::tiny_mlp_artifact());
  BlockedBackend backend;  // prepare() never called
  for (const PlanOp& op : plan.ops()) {
    if (op.kind != OpKind::IntLinear) continue;
    BackendIo io;
    std::vector<float> in(plan.slots()[static_cast<std::size_t>(op.in0)].numel);
    std::vector<float> out(plan.slots()[static_cast<std::size_t>(op.out)].numel);
    io.in0 = in.data();
    io.out = out.data();
    BackendScratch scratch;
    EXPECT_THROW(backend.run(op, plan, io, scratch, {}), std::logic_error);
    return;
  }
  FAIL() << "MLP plan has no IntLinear op";
}

// --- SIMD backend ----------------------------------------------------

/// Explicit-kernel tiers executable on this machine: portable always,
/// avx2 when CPUID licenses it. Never the (throwing) kScalar.
std::vector<SimdTier> reachable_simd_tiers() {
  std::vector<SimdTier> tiers = {SimdTier::kPortable};
  if (max_supported_simd_tier() == SimdTier::kAvx2) {
    tiers.push_back(SimdTier::kAvx2);
  }
  return tiers;
}

/// RAII pin of resolve_simd_tier() for tests constructing SimdBackend.
struct ForcedTier {
  explicit ForcedTier(SimdTier tier) { force_simd_tier(tier); }
  ~ForcedTier() { clear_forced_simd_tier(); }
  ForcedTier(const ForcedTier&) = delete;
  ForcedTier& operator=(const ForcedTier&) = delete;
};

// Same shape grid as the blocked suite, swept additionally over every
// reachable tier and over activation widths that land on different
// kernels: 3-bit codes ride the int8 maddubs path on avx2 (the shared
// bound proves it exact for these layers), 9-bit codes exceed the u8
// eligibility and ride the int16 pair path.
TEST(BackendIdentity, SimdConvMatchesScalarAtEveryTier) {
  struct Shape {
    int in_c, hw, filters, kernel, stride, pad;
  };
  const Shape shapes[] = {
      {3, 9, 5, 3, 1, 1},    // tiny, tail tile only
      {8, 12, 16, 3, 1, 1},  // exact tile multiple
      {6, 10, 17, 3, 2, 0},  // one past a tile boundary, strided, no pad
      {4, 7, 13, 5, 1, 2},   // odd everything, large kernel
  };
  util::Rng rng(505);
  for (const Shape& s : shapes) {
    const std::int64_t per_filter =
        static_cast<std::int64_t>(s.in_c) * s.kernel * s.kernel;
    const IntegerLayer layer = random_integer_layer(s.filters, per_filter, rng);
    const simd::PackedSimd packed = simd::pack_simd(layer);
    ASSERT_TRUE(packed.usable);
    ASSERT_TRUE(packed.int8_usable);  // pattern bits <= 4 -> |w| <= 15
    for (const int act_bits : {3, 9}) {
      for (const int batch : {1, 3, 8}) {
        const ActCodes acts = random_act_codes(
            static_cast<std::size_t>(batch) * s.in_c * s.hw * s.hw, act_bits, rng);
        const Tensor reference = integer_conv_forward(
            layer, acts, batch, s.in_c, s.hw, s.hw, s.kernel, s.stride, s.pad);
        for (const SimdTier tier : reachable_simd_tiers()) {
          for (const int threads : {1, 2, 8}) {
            ThreadedExec te(threads);
            std::vector<float> out(reference.numel());
            std::vector<std::int32_t> cols;
            std::vector<std::int16_t> cols16;
            std::vector<std::uint8_t> cols8;
            simd::conv_forward_into(tier, packed, acts, batch, s.in_c, s.hw, s.hw,
                                    s.kernel, s.stride, s.pad, out.data(), cols,
                                    cols16, cols8, te.exec);
            expect_bytes_equal(out.data(), reference.data(), reference.numel(),
                               std::string("simd conv tier=") +
                                   simd_tier_name(tier) +
                                   " act_bits=" + std::to_string(act_bits) +
                                   " filters=" + std::to_string(s.filters) +
                                   " batch=" + std::to_string(batch) +
                                   " threads=" + std::to_string(threads));
          }
        }
      }
    }
  }
}

TEST(BackendIdentity, SimdLinearMatchesScalarAtEveryTier) {
  util::Rng rng(606);
  for (const int filters : {1, 8, 13, 24, 33}) {
    const int in_features = 50 + filters;
    const IntegerLayer layer = random_integer_layer(filters, in_features, rng);
    const simd::PackedSimd packed = simd::pack_simd(layer);
    ASSERT_TRUE(packed.usable);
    for (const int act_bits : {4, 10}) {  // u8-eligible / int16-pair path
      for (const int batch : {1, 3, 8}) {
        const ActCodes acts = random_act_codes(
            static_cast<std::size_t>(batch) * in_features, act_bits, rng);
        const Tensor reference =
            integer_linear_forward(layer, acts, batch, in_features);
        for (const SimdTier tier : reachable_simd_tiers()) {
          for (const int threads : {1, 2, 8}) {
            ThreadedExec te(threads);
            std::vector<float> out(reference.numel());
            std::vector<std::int16_t> acts16;
            std::vector<std::uint8_t> acts8;
            simd::linear_forward_into(tier, packed, acts, batch, in_features,
                                      out.data(), acts16, acts8, te.exec);
            expect_bytes_equal(out.data(), reference.data(), reference.numel(),
                               std::string("simd linear tier=") +
                                   simd_tier_name(tier) +
                                   " act_bits=" + std::to_string(act_bits) +
                                   " filters=" + std::to_string(filters) +
                                   " batch=" + std::to_string(batch) +
                                   " threads=" + std::to_string(threads));
          }
        }
      }
    }
  }
}

TEST(BackendIdentity, SimdPrunedRowsAreHardZero) {
  util::Rng rng(707);
  IntegerLayer layer = random_integer_layer(9, 18, rng);
  std::fill(layer.filter_bits.begin(), layer.filter_bits.end(), std::uint8_t{0});
  std::fill(layer.codes.begin(), layer.codes.end(), 0);
  const simd::PackedSimd packed = simd::pack_simd(layer);
  const ActCodes acts = random_act_codes(3 * 18, 4, rng);
  for (const SimdTier tier : reachable_simd_tiers()) {
    std::vector<float> out(3 * 9, -1.0f);
    std::vector<std::int16_t> acts16;
    std::vector<std::uint8_t> acts8;
    simd::linear_forward_into(tier, packed, acts, 3, 18, out.data(), acts16, acts8);
    for (const float v : out) {
      EXPECT_EQ(0.0f, v);
      EXPECT_FALSE(std::signbit(v));  // hard +0.0f, matching the scalar kernels
    }
  }
}

TEST(BackendIdentity, SimdHighBitLayersAreNotPackable) {
  util::Rng rng(808);
  IntegerLayer layer = random_integer_layer(4, 10, rng);
  layer.filter_bits[2] = 16;  // centered codes would overflow int16
  const simd::PackedSimd packed = simd::pack_simd(layer);
  EXPECT_FALSE(packed.usable);
  const ActCodes acts = random_act_codes(10, 4, rng);
  std::vector<float> out(4);
  std::vector<std::int16_t> acts16;
  std::vector<std::uint8_t> acts8;
  EXPECT_THROW(simd::linear_forward_into(SimdTier::kPortable, packed, acts, 1, 10,
                                         out.data(), acts16, acts8),
               std::logic_error);
}

TEST(BackendIdentity, SimdKernelsRefuseScalarTier) {
  util::Rng rng(909);
  const IntegerLayer layer = random_integer_layer(4, 10, rng);
  const simd::PackedSimd packed = simd::pack_simd(layer);
  ASSERT_TRUE(packed.usable);
  const ActCodes acts = random_act_codes(10, 4, rng);
  std::vector<float> out(4);
  std::vector<std::int16_t> acts16;
  std::vector<std::uint8_t> acts8;
  EXPECT_THROW(simd::linear_forward_into(SimdTier::kScalar, packed, acts, 1, 10,
                                         out.data(), acts16, acts8),
               std::logic_error);
}

/// The zoo acceptance gate extended to the simd backend: byte-identical
/// logits to the scalar session at every reachable tier, batch size,
/// and thread count — proving the runtime dispatch ("same binary,
/// different tier") preserves the contract.
TEST(BackendIdentity, ZooPlansSimdByteIdenticalAtEveryTier) {
  const deploy::QuantizedArtifact artifacts[] = {serve::tiny_vgg_artifact(),
                                                 serve::tiny_mlp_artifact(),
                                                 serve::tiny_resnet_artifact()};
  for (const SimdTier tier : reachable_simd_tiers()) {
    ForcedTier forced(tier);
    for (const deploy::QuantizedArtifact& artifact : artifacts) {
      const auto plan =
          std::make_shared<const ExecutionPlan>(compile_plan(artifact));
      for (const int threads : {1, 2, 8}) {
        ThreadedExec te(threads);
        serve::EngineSession scalar(plan, 2, te.exec,
                                    make_backend(BackendKind::Scalar));
        serve::EngineSession simd_session(plan, 2, te.exec,
                                          make_backend(BackendKind::Simd));
        for (const int batch : {1, 3, 8}) {
          const Tensor input = serve::random_batch(
              plan->sample_shape(), batch,
              2000 + static_cast<std::uint64_t>(batch) * 7 + threads);
          const Tensor a = scalar.run(input);
          const Tensor b = simd_session.run(input);
          ASSERT_EQ(a.shape(), b.shape());
          expect_bytes_equal(a.data(), b.data(), a.numel(),
                             artifact.arch.kind + " tier=" +
                                 simd_tier_name(tier) +
                                 " batch=" + std::to_string(batch) +
                                 " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

/// Concurrent SimdBackend execution for the TSan lane: the prepare()-
/// built pair/quad panels are shared read-only state across sessions'
/// worker threads.
TEST(BackendIdentity, ConcurrentSimdRunsMatchScalar) {
  const deploy::QuantizedArtifact artifact = serve::tiny_resnet_artifact();
  const auto plan = std::make_shared<const ExecutionPlan>(compile_plan(artifact));
  serve::EngineSession scalar(plan, 1);
  serve::EngineSession simd_session(plan, 3, {}, make_backend(BackendKind::Simd));
  constexpr int kSubmitters = 6;
  constexpr int kRounds = 4;
  std::vector<Tensor> inputs, expected;
  for (int i = 0; i < kSubmitters; ++i) {
    inputs.push_back(serve::random_batch(plan->sample_shape(), 3,
                                         900 + static_cast<std::uint64_t>(i)));
    expected.push_back(scalar.run(inputs.back()));
  }
  std::vector<int> mismatches(kSubmitters, 0);
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kSubmitters; ++i) {
      threads.emplace_back([&, i] {
        for (int r = 0; r < kRounds; ++r) {
          const Tensor out = simd_session.run(inputs[static_cast<std::size_t>(i)]);
          if (std::memcmp(out.data(), expected[static_cast<std::size_t>(i)].data(),
                          out.numel() * sizeof(float)) != 0) {
            ++mismatches[static_cast<std::size_t>(i)];
          }
        }
      });
    }
  }
  for (int i = 0; i < kSubmitters; ++i) {
    EXPECT_EQ(0, mismatches[static_cast<std::size_t>(i)]) << "submitter " << i;
  }
}

/// dispatch() surfaces the resolved ISA: integer ops label simd/<isa>,
/// everything else delegates — the labels cqar_info's dispatch column
/// and the plan profiler rows carry.
TEST(BackendFactory, SimdDispatchNamesResolvedIsa) {
  const ExecutionPlan plan = compile_plan(serve::tiny_vgg_artifact());
  for (const SimdTier tier : reachable_simd_tiers()) {
    ForcedTier forced(tier);
    const auto backend = make_backend(BackendKind::Simd);
    backend->prepare(plan);
    bool saw_integer = false;
    for (const PlanOp& op : plan.ops()) {
      const std::string label = backend->dispatch(op);
      if (op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear) {
        saw_integer = true;
        if (tier == SimdTier::kPortable) {
          EXPECT_EQ("simd/portable", label);
        } else {
          EXPECT_TRUE(label == "simd/avx2" || label == "simd/avx2-i8") << label;
        }
      } else {
        EXPECT_EQ("scalar", label);
      }
    }
    EXPECT_TRUE(saw_integer);
  }
}

/// CQ_SIMD=off / force_simd_tier(kScalar) retires the explicit kernels:
/// the backend constructs at tier scalar, every integer op delegates to
/// the blocked implementation (the dispatch label says so), and outputs
/// stay byte-identical.
TEST(BackendFactory, SimdForcedFallbackDelegates) {
  ForcedTier forced(SimdTier::kScalar);
  const auto plan = std::make_shared<const ExecutionPlan>(
      compile_plan(serve::tiny_vgg_artifact()));
  const auto backend = make_backend(BackendKind::Simd);
  backend->prepare(*plan);
  for (const PlanOp& op : plan->ops()) {
    if (op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear) {
      EXPECT_STREQ("blocked", backend->dispatch(op));
    } else {
      EXPECT_STREQ("scalar", backend->dispatch(op));
    }
  }
  serve::EngineSession scalar(plan, 1);
  serve::EngineSession fallback(plan, 1, {}, make_backend(BackendKind::Simd));
  const Tensor input = serve::random_batch(plan->sample_shape(), 3, 42);
  const Tensor a = scalar.run(input);
  const Tensor b = fallback.run(input);
  expect_bytes_equal(a.data(), b.data(), a.numel(), "forced scalar-tier fallback");
}

TEST(CpuFeatures, EnvAndForceResolveTiers) {
  const char* prev = std::getenv("CQ_SIMD");
  const std::string saved = prev != nullptr ? prev : "";
  const bool had = prev != nullptr;

  ::setenv("CQ_SIMD", "off", 1);
  EXPECT_EQ(SimdTier::kScalar, resolve_simd_tier());
  ::setenv("CQ_SIMD", "scalar", 1);
  EXPECT_EQ(SimdTier::kScalar, resolve_simd_tier());
  ::setenv("CQ_SIMD", "portable", 1);
  EXPECT_EQ(SimdTier::kPortable, resolve_simd_tier());
  // "avx2", "auto", and typos all resolve to the fastest tier the CPU
  // supports — a misspelled override degrades, never crashes.
  ::setenv("CQ_SIMD", "avx2", 1);
  EXPECT_EQ(max_supported_simd_tier(), resolve_simd_tier());
  ::setenv("CQ_SIMD", "definitely-a-typo", 1);
  EXPECT_EQ(max_supported_simd_tier(), resolve_simd_tier());
  // The forced override outranks the environment.
  force_simd_tier(SimdTier::kPortable);
  EXPECT_EQ(SimdTier::kPortable, resolve_simd_tier());
  clear_forced_simd_tier();

  if (had) {
    ::setenv("CQ_SIMD", saved.c_str(), 1);
  } else {
    ::unsetenv("CQ_SIMD");
  }
  // The supported ceiling is exactly what CPUID reported.
  EXPECT_EQ(cpu_features().avx2 ? SimdTier::kAvx2 : SimdTier::kPortable,
            max_supported_simd_tier());
}

TEST(CpuFeatures, JsonNamesArchAndTier) {
  const std::string json = cpu_features_json();
  EXPECT_NE(json.find("\"arch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"avx2\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tier\""), std::string::npos) << json;
  EXPECT_NE(json.find(simd_tier_name(resolve_simd_tier())), std::string::npos)
      << json;
}

TEST(BackendFactory, SimdPreparedBytesCoverBothLayouts) {
  const ExecutionPlan plan = compile_plan(serve::tiny_vgg_artifact());
  const auto blocked_backend = make_backend(BackendKind::Blocked);
  const auto simd_backend = make_backend(BackendKind::Simd);
  blocked_backend->prepare(plan);
  simd_backend->prepare(plan);
  // The simd backend holds the blocked panels plus its own
  // lane/pair/quad layouts, so it must report strictly more.
  EXPECT_GT(simd_backend->prepared_bytes(), blocked_backend->prepared_bytes());
}

TEST(EngineSessionValidation, RejectsBadBatchesUpFront) {
  serve::EngineSession session(serve::tiny_mlp_artifact());  // sample shape [12]
  util::Rng rng(1);
  // Wrong rank: a bare sample without the batch dimension.
  try {
    session.run(Tensor::rand_uniform({12}, rng, 0.0f, 1.0f));
    FAIL() << "rank mismatch accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("[12]"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("12 floats/sample"), std::string::npos)
        << e.what();
  }
  // Empty batch.
  try {
    session.run(Tensor({0, 12}));
    FAIL() << "empty batch accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(">= 1"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("[12]"), std::string::npos) << e.what();
  }
  // Right rank, wrong per-sample size (total size not divisible into
  // samples of the plan's shape).
  try {
    session.run(Tensor::rand_uniform({2, 13}, rng, 0.0f, 1.0f));
    FAIL() << "per-sample size mismatch accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("[12]"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("[2, 13]"), std::string::npos) << e.what();
  }
  // A valid batch still runs after the failures.
  const Tensor out = session.run(Tensor::rand_uniform({3, 12}, rng, 0.0f, 1.0f));
  EXPECT_EQ(out.dim(0), 3);
}

}  // namespace
}  // namespace cq::deploy
