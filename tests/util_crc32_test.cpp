#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/crc32.h"

namespace cq::util {
namespace {

TEST(Crc32, MatchesCheckValue) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char* msg = "123456789";
  EXPECT_EQ(crc32(msg, std::strlen(msg)), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32, IncrementalEqualsOneShot) {
  const std::string data = "class-based quantization for neural networks";
  Crc32 incremental;
  incremental.update(data.data(), 10);
  incremental.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(incremental.value(), crc32(data.data(), data.size()));
}

TEST(Crc32, ValueIsSideEffectFree) {
  Crc32 c;
  c.update("abc", 3);
  const std::uint32_t first = c.value();
  EXPECT_EQ(c.value(), first);
  c.update("def", 3);
  EXPECT_NE(c.value(), first);
}

TEST(Crc32, ResetRestartsTheStream) {
  Crc32 c;
  c.update("garbage", 7);
  c.reset();
  c.update("123456789", 9);
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32, SingleBitFlipChangesChecksum) {
  std::string data(64, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i * 7);
  const std::uint32_t reference = crc32(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); i += 13) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    EXPECT_NE(crc32(mutated.data(), mutated.size()), reference) << "byte " << i;
  }
}

}  // namespace
}  // namespace cq::util
