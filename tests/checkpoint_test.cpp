#include <gtest/gtest.h>

#include "nn/models/checkpoint.h"
#include "nn/models/mlp.h"
#include "nn/models/vgg_small.h"

namespace cq::nn {
namespace {

VggSmallConfig tiny_vgg() {
  VggSmallConfig cfg;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.c1 = 4;
  cfg.c2 = 4;
  cfg.c3 = 4;
  cfg.f1 = 8;
  cfg.f2 = 8;
  cfg.f3 = 8;
  return cfg;
}

TEST(Checkpoint, RoundTripsMlp) {
  const std::string path = testing::TempDir() + "/mlp.ckpt";
  Mlp original({6, {10, 8}, 3, 1});
  save_checkpoint(path, original);

  Mlp loaded({6, {10, 8}, 3, 2});  // different init
  ASSERT_TRUE(load_checkpoint(path, loaded));
  util::Rng rng(3);
  const Tensor x = Tensor::randn({4, 6}, rng);
  original.set_training(false);
  loaded.set_training(false);
  EXPECT_TRUE(original.forward(x).allclose(loaded.forward(x)));
}

TEST(Checkpoint, RoundTripsBatchNormBuffers) {
  const std::string path = testing::TempDir() + "/vgg.ckpt";
  VggSmall original(tiny_vgg());
  util::Rng rng(4);
  // Accumulate nontrivial running statistics first.
  original.set_training(true);
  for (int i = 0; i < 3; ++i) original.forward(Tensor::randn({4, 3, 8, 8}, rng));
  save_checkpoint(path, original);

  VggSmallConfig cfg2 = tiny_vgg();
  cfg2.seed = 77;
  VggSmall loaded(cfg2);
  ASSERT_TRUE(load_checkpoint(path, loaded));
  original.set_training(false);
  loaded.set_training(false);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_TRUE(original.forward(x).allclose(loaded.forward(x), 1e-5f));
}

TEST(Checkpoint, RejectsArchitectureMismatchWithoutMutation) {
  const std::string path = testing::TempDir() + "/mismatch.ckpt";
  Mlp small({6, {10, 8}, 3, 1});
  save_checkpoint(path, small);

  Mlp other({6, {12, 8}, 3, 5});
  const Tensor before = other.parameters()[0]->value;
  EXPECT_FALSE(load_checkpoint(path, other));
  EXPECT_TRUE(other.parameters()[0]->value.allclose(before, 0.0f));
}

TEST(Checkpoint, MissingFileThrows) {
  Mlp model({4, {6}, 2, 1});
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/x.ckpt", model), std::runtime_error);
}

TEST(Checkpoint, QuantizationStateIsNotPersisted) {
  // Checkpoints hold master weights only; bit assignments are
  // reproducible from a stored SearchResult instead.
  const std::string path = testing::TempDir() + "/quant.ckpt";
  Mlp model({6, {10, 8}, 3, 1});
  model.scored_layers()[0].layers.front()->set_filter_bits(std::vector<int>(8, 2));
  save_checkpoint(path, model);

  Mlp loaded({6, {10, 8}, 3, 9});
  ASSERT_TRUE(load_checkpoint(path, loaded));
  EXPECT_TRUE(loaded.scored_layers()[0].layers.front()->filter_bits().empty());
}

}  // namespace
}  // namespace cq::nn
