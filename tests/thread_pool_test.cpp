#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace cq::util {
namespace {

TEST(ThreadPool, RejectsNegativeThreadCount) {
  EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPool, ZeroThreadsRunsJobsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  int calls = 0;
  std::thread::id observed;
  pool.submit([&] {
    ++calls;
    observed = std::this_thread::get_id();
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(observed, std::this_thread::get_id());
}

TEST(ThreadPool, RunsEverySubmittedJobExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleIsSafeOnFreshAndDrainedPools) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted yet
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  pool.wait_idle();  // drained twice in a row
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, CoversTheRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 0, 257, 16, [&hits](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, HandlesEmptyRangeAndNonZeroBegin) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, 1, [&calls](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, 10, 20, 3, [&sum](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ParallelFor, ZeroThreadPoolFallsBackToSerial) {
  ThreadPool pool(0);
  std::int64_t sum = 0;  // safe: everything runs on this thread
  parallel_for(pool, 0, 100, 7,
               [&sum](std::int64_t lo, std::int64_t hi) { sum += hi - lo; });
  EXPECT_EQ(sum, 100);
}

TEST(ParallelFor, DefaultGrainCoversRange) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> count{0};
  parallel_for(pool, 0, 1000, 0, [&count](std::int64_t lo, std::int64_t hi) {
    count.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ParallelFor, PropagatesTheFirstBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 64, 4,
                   [](std::int64_t lo, std::int64_t) {
                     if (lo >= 32) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
  // The pool stays usable after a failed parallel_for.
  std::atomic<int> count{0};
  parallel_for(pool, 0, 8, 1,
               [&count](std::int64_t, std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ParallelFor, ConcurrentCallersShareThePool) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 3; ++t) {
    callers.emplace_back([&pool, &total] {
      parallel_for(pool, 0, 500, 13, [&total](std::int64_t lo, std::int64_t hi) {
        total.fetch_add(hi - lo, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 1500);
}

}  // namespace
}  // namespace cq::util
