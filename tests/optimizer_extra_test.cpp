#include <gtest/gtest.h>

#include <cmath>

#include "nn/models/mlp.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace cq::nn {
namespace {

/// A single scalar parameter minimizing f(x) = (x - target)^2 by
/// hand-fed gradients — enough to pin down optimizer arithmetic.
struct Scalar {
  Parameter p{"x", Tensor({1})};

  float x() const { return p.value[0]; }
  void set(float v) { p.value[0] = v; }
  void feed_grad(float target) { p.grad[0] = 2.0f * (p.value[0] - target); }
};

TEST(Adam, FirstStepMovesByLearningRateTowardGradient) {
  Scalar s;
  s.set(5.0f);
  Adam adam({&s.p}, 0.1);
  s.feed_grad(0.0f);
  adam.step();
  // With bias correction, |step 1| == lr (up to eps): m_hat/sqrt(v_hat) = sign(g).
  EXPECT_NEAR(s.x(), 5.0f - 0.1f, 1e-4);
  EXPECT_EQ(adam.steps_taken(), 1);
}

TEST(Adam, ConvergesOnQuadratic) {
  Scalar s;
  s.set(3.0f);
  Adam adam({&s.p}, 0.05);
  for (int i = 0; i < 500; ++i) {
    s.feed_grad(-1.5f);
    adam.step();
  }
  EXPECT_NEAR(s.x(), -1.5f, 0.05);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  Scalar s;
  s.set(2.0f);
  Adam adam({&s.p}, 0.02, 0.9, 0.999, 1e-8, 1.0);
  for (int i = 0; i < 400; ++i) {
    s.feed_grad(2.0f);  // loss gradient says "stay at 2"
    adam.step();
  }
  // Decay shifts the optimum below the loss-only target.
  EXPECT_LT(s.x(), 2.0f);
}

TEST(Adam, ZeroGradClearsAccumulatedGradients) {
  Scalar s;
  s.set(1.0f);
  Adam adam({&s.p}, 0.1);
  s.p.grad[0] = 42.0f;
  adam.zero_grad();
  EXPECT_EQ(s.p.grad[0], 0.0f);
}

TEST(Sgd, StillMatchesPlainMomentumUpdate) {
  Scalar s;
  s.set(1.0f);
  Sgd sgd({&s.p}, 0.1, 0.9, 0.0);
  s.p.grad[0] = 1.0f;
  sgd.step();
  EXPECT_NEAR(s.x(), 1.0f - 0.1f, 1e-6);  // v = g on the first step
  s.p.grad[0] = 1.0f;
  sgd.step();
  EXPECT_NEAR(s.x(), 0.9f - 0.1f * (0.9f + 1.0f), 1e-6);
}

TEST(CosineSchedule, EndpointsAreExact) {
  const CosineLrSchedule schedule(0.1, 10, 0.001);
  EXPECT_NEAR(schedule.lr_at(0), 0.1, 1e-12);
  EXPECT_NEAR(schedule.lr_at(9), 0.001, 1e-12);
}

TEST(CosineSchedule, IsMonotonicallyDecreasing) {
  const CosineLrSchedule schedule(0.1, 20);
  for (int e = 1; e < 20; ++e) {
    EXPECT_LT(schedule.lr_at(e), schedule.lr_at(e - 1)) << "epoch " << e;
  }
}

TEST(CosineSchedule, MidpointIsHalfway) {
  const CosineLrSchedule schedule(0.2, 11, 0.0);
  EXPECT_NEAR(schedule.lr_at(5), 0.1, 1e-12);
}

TEST(CosineSchedule, ClampsOutOfRangeEpochs) {
  const CosineLrSchedule schedule(0.1, 5, 0.01);
  EXPECT_NEAR(schedule.lr_at(-3), 0.1, 1e-12);
  EXPECT_NEAR(schedule.lr_at(99), 0.01, 1e-12);
}

TEST(CosineSchedule, SingleEpochRunsAtInitialLr) {
  const CosineLrSchedule schedule(0.3, 1);
  EXPECT_NEAR(schedule.lr_at(0), 0.3, 1e-12);
}

/// Training-level check: both optimizers and both schedules learn a
/// separable 3-class problem through the Trainer front-end.
class TrainerVariants
    : public ::testing::TestWithParam<std::pair<OptimizerKind, LrScheduleKind>> {};

TEST_P(TrainerVariants, LearnsSeparableBlobs) {
  const auto [opt, sched] = GetParam();
  util::Rng rng(3);
  const int per_class = 40;
  const int n = 3 * per_class;
  Tensor images({n, 6});
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i / per_class;
    for (int f = 0; f < 6; ++f) {
      images.at(i, f) = static_cast<float>(rng.normal(f % 3 == cls ? 1.5 : 0.0, 0.4));
    }
    labels[static_cast<std::size_t>(i)] = cls;
  }

  Mlp model({6, {16, 12}, 3, 11});
  TrainConfig config;
  config.epochs = 25;
  config.batch_size = 20;
  config.lr = opt == OptimizerKind::kAdam ? 0.01 : 0.05;
  config.optimizer = opt;
  config.lr_schedule = sched;
  Trainer(config).fit(model, images, labels);
  EXPECT_GT(Trainer::evaluate(model, images, labels), 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrainerVariants,
    ::testing::Values(std::pair{OptimizerKind::kSgd, LrScheduleKind::kStep},
                      std::pair{OptimizerKind::kSgd, LrScheduleKind::kCosine},
                      std::pair{OptimizerKind::kAdam, LrScheduleKind::kStep},
                      std::pair{OptimizerKind::kAdam, LrScheduleKind::kCosine}));

}  // namespace
}  // namespace cq::nn
