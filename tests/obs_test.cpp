#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "serve/engine_session.h"
#include "serve_fixtures.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cq::obs {
namespace {

TEST(Counter, CountsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(LatencyHistogram, EmptySnapshotIsAllZero) {
  LatencyHistogram h;
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.percentile(50.0), 0.0);
  EXPECT_EQ(snap.percentile(99.0), 0.0);
}

TEST(LatencyHistogram, SingleElementIsExactAtEveryPercentile) {
  LatencyHistogram h;
  h.record(137.25);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 137.25);
  EXPECT_EQ(snap.max, 137.25);
  // Interpolation inside the bucket is clamped into [min, max], so a
  // one-element sample reports that element exactly, not a bucket edge.
  for (const double q : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(snap.percentile(q), 137.25) << "q=" << q;
  }
}

TEST(LatencyHistogram, BucketIndexIsMonotoneAndBoundsItsValue) {
  // Every value must land in a bucket whose upper edge is >= the value
  // and whose index never decreases as values grow — including across
  // the power-of-two octave boundaries and the sub-1.0 floor bucket.
  std::size_t last = 0;
  for (const double v : {0.0, 0.5, 0.999, 1.0, 1.03, 1.999, 2.0, 3.0, 4.0, 63.9,
                         64.0, 1000.0, 1e6, 1e9}) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    EXPECT_LT(index, LatencyHistogram::kBuckets);
    EXPECT_GE(index, last) << "bucket index regressed at " << v;
    EXPECT_GE(LatencyHistogram::bucket_upper(index), v);
    last = index;
  }
  // Garbage inputs must not escape the bucket range.
  EXPECT_EQ(LatencyHistogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::nan("")), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e30), LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, SnapshotPercentilesTrackTheExactReference) {
  // Random log-uniform draws spanning ~7 octaves: the snapshot
  // percentile must agree with util::percentile over the raw sample to
  // within the bucket's ~3.1% relative width.
  LatencyHistogram h;
  std::vector<double> raw;
  util::Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.uniform(0.0, 11.5));  // ~[1, 1e5]
    raw.push_back(v);
    h.record(v);
  }
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, raw.size());
  for (const double q : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = util::percentile(raw, q);
    const double approx = snap.percentile(q);
    EXPECT_NEAR(approx, exact, 0.04 * exact) << "q=" << q;
  }
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.record(10.0 + t);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.min, 10.0);
  EXPECT_EQ(snap.max, 13.0);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);  // no record fell between the arrays
}

TEST(LatencyHistogram, ResetClearsTheWindow) {
  LatencyHistogram h;
  h.record(5.0);
  h.record(500.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  const HistogramSnapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  h.record(7.0);  // a fresh window works after reset
  EXPECT_EQ(h.snapshot().percentile(50.0), 7.0);
}

TEST(UtilPercentile, MatchesOrderStatisticsWithInterpolation) {
  EXPECT_EQ(util::percentile(std::vector<double>{}, 50.0), 0.0);
  EXPECT_EQ(util::percentile(std::vector<double>{42.0}, 0.0), 42.0);
  EXPECT_EQ(util::percentile(std::vector<double>{42.0}, 100.0), 42.0);
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(util::percentile(v, 0.0), 1.0);
  EXPECT_EQ(util::percentile(v, 100.0), 4.0);
  EXPECT_NEAR(util::percentile(v, 50.0), 2.5, 1e-12);  // rank 1.5
  // Out-of-range q clamps rather than indexing out of bounds.
  EXPECT_EQ(util::percentile(v, -5.0), 1.0);
  EXPECT_EQ(util::percentile(v, 120.0), 4.0);
  // The float overload agrees with the double one.
  const std::vector<float> f{1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_NEAR(util::percentile(f, 50.0), 2.5, 1e-6);
}

TEST(Registry, InstrumentsAreStableAndExportable) {
  Registry registry;
  Counter& c = registry.counter("served", "requests served");
  EXPECT_EQ(&c, &registry.counter("served"));  // same instrument, not a twin
  c.inc(3);
  registry.gauge("depth").set(2.0);
  registry.histogram("lat_us", "latency").record(100.0);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"served\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;

  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("served_total 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE served counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("depth 2"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lat_us_bucket{le=\"+Inf\"} 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lat_us_count 1"), std::string::npos) << prom;

  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(registry.gauge("depth").value(), 0.0);
  EXPECT_EQ(registry.histogram("lat_us").count(), 0u);
}

TEST(PlanProfiler, AttributesEveryOpOfAProfiledSession) {
  const deploy::QuantizedArtifact artifact = serve::tiny_mlp_artifact();
  serve::EngineSession session(artifact, 1);
  PlanProfiler profiler(session.plan(), &session.backend());
  session.set_trace_sink(&profiler);
  constexpr int kRuns = 3;
  constexpr int kBatch = 4;
  for (int r = 0; r < kRuns; ++r) {
    session.run(serve::random_batch(session.sample_shape(), kBatch, 40 + r));
  }
  session.set_trace_sink(nullptr);

  const ProfileReport report = profiler.report();
  ASSERT_EQ(report.ops.size(), session.plan().ops().size());
  double share_total = 0.0;
  for (const OpProfileRow& row : report.ops) {
    EXPECT_EQ(row.calls, static_cast<std::uint64_t>(kRuns));
    EXPECT_EQ(row.samples, static_cast<std::uint64_t>(kRuns * kBatch));
    EXPECT_EQ(row.kind,
              deploy::op_kind_name(
                  session.plan().ops()[static_cast<std::size_t>(row.op)].kind));
    EXPECT_EQ(row.dispatch, session.backend().dispatch(
                                session.plan().ops()[static_cast<std::size_t>(row.op)]));
    share_total += row.share;
  }
  EXPECT_GT(report.total_ms, 0.0);
  EXPECT_NEAR(share_total, 1.0, 1e-9);
  EXPECT_FALSE(report.by_kind.empty());
  for (const ProfileAggregate& agg : report.by_layer) {
    EXPECT_NE(agg.key, "-");  // glue ops aggregate under kinds, not layers
  }
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"total_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"by_kind\""), std::string::npos);

  profiler.reset();
  EXPECT_EQ(profiler.report().total_ms, 0.0);
}

TEST(PlanProfiler, IgnoresEventsOutsideThePlan) {
  const deploy::QuantizedArtifact artifact = serve::tiny_mlp_artifact();
  serve::EngineSession session(artifact, 1);
  PlanProfiler profiler(session.plan(), &session.backend());
  OpEvent bogus;
  bogus.op = 10000;  // a sink must never trust event indices blindly
  bogus.batch = 1;
  bogus.ns = 100.0;
  profiler.on_op(bogus);
  bogus.op = -1;
  profiler.on_op(bogus);
  EXPECT_EQ(profiler.report().total_ms, 0.0);
}

TEST(ChromeTraceWriter, RendersSpansAsLoadableTraceEvents) {
  ChromeTraceWriter writer;
  const auto origin = std::chrono::steady_clock::now();
  RequestSpan span;
  span.id = 7;
  span.submit = origin;
  span.popped = origin + std::chrono::microseconds(50);
  span.exec_begin = origin + std::chrono::microseconds(60);
  span.exec_end = origin + std::chrono::microseconds(460);
  span.done = origin + std::chrono::microseconds(470);
  span.batch = 3;
  span.worker = 1;
  writer.on_span(span);
  EXPECT_EQ(writer.size(), 2u);  // one "queue" + one "execute" event

  const std::string path = testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(writer.write(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(16384, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"name\": \"queue\""), std::string::npos);
  EXPECT_NE(content.find("\"name\": \"execute\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(content.find("\"tid\": 7"), std::string::npos);
  EXPECT_NE(content.find("\"batch\": 3"), std::string::npos);
}

TEST(Logging, ParsesLevelNamesCaseInsensitively) {
  util::LogLevel level = util::LogLevel::kDebug;
  EXPECT_TRUE(util::parse_log_level("error", level));
  EXPECT_EQ(level, util::LogLevel::kError);
  EXPECT_TRUE(util::parse_log_level("WARN", level));
  EXPECT_EQ(level, util::LogLevel::kWarn);
  EXPECT_TRUE(util::parse_log_level("Warning", level));
  EXPECT_EQ(level, util::LogLevel::kWarn);
  EXPECT_TRUE(util::parse_log_level("info", level));
  EXPECT_EQ(level, util::LogLevel::kInfo);
  EXPECT_TRUE(util::parse_log_level("DEBUG", level));
  EXPECT_EQ(level, util::LogLevel::kDebug);
  level = util::LogLevel::kInfo;
  EXPECT_FALSE(util::parse_log_level("loud", level));
  EXPECT_EQ(level, util::LogLevel::kInfo);  // untouched on failure
  EXPECT_FALSE(util::parse_log_level("", level));
}

TEST(Logging, EnvironmentOverridesTheThreshold) {
  const util::LogLevel before = util::log_level();
  ASSERT_EQ(setenv("CQ_LOG_LEVEL", "error", 1), 0);
  util::refresh_log_level_from_env();
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  ASSERT_EQ(setenv("CQ_LOG_LEVEL", "definitely-not-a-level", 1), 0);
  util::refresh_log_level_from_env();  // unparsable: warn, keep the level
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  ASSERT_EQ(unsetenv("CQ_LOG_LEVEL"), 0);
  util::refresh_log_level_from_env();  // unset: keep the level
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  util::set_log_level(before);
}

}  // namespace
}  // namespace cq::obs
