#include <gtest/gtest.h>

#include <cmath>

#include "hw/cost_model.h"
#include "hw/pe_array.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace cq::hw {
namespace {

using tensor::Tensor;

LayerWorkload make_workload(std::vector<int> bits, std::int64_t positions,
                            std::int64_t wpf, int act_bits = 4) {
  LayerWorkload w;
  w.name = "layer";
  w.output_positions = positions;
  w.weights_per_filter = wpf;
  w.filter_bits = std::move(bits);
  w.act_bits = act_bits;
  return w;
}

TEST(EnergyModel, ZeroBitWeightsCostNothing) {
  const EnergyModel e;
  EXPECT_EQ(e.mac_pj(0, 8), 0.0);
  EXPECT_EQ(e.mac_pj(-1, 8), 0.0);
}

TEST(EnergyModel, EightByEightMacMatchesSurveyNumbers) {
  const EnergyModel e;
  // 8x8 multiply (0.2 pJ) + 32-bit accumulate (0.1 pJ).
  EXPECT_NEAR(e.mac_pj(8, 8), 0.3, 1e-12);
}

TEST(EnergyModel, MultiplierEnergyScalesWithBitProduct) {
  const EnergyModel e;
  const double add = e.add_pj_per_bit * 32.0;
  EXPECT_NEAR(e.mac_pj(4, 8) - add, (e.mac_pj(8, 8) - add) / 2.0, 1e-12);
  EXPECT_NEAR(e.mac_pj(2, 2) - add, (e.mac_pj(8, 8) - add) / 16.0, 1e-12);
}

TEST(EnergyModel, MacEnergyIsMonotoneInWeightBits) {
  const EnergyModel e;
  for (int b = 1; b < 16; ++b) {
    EXPECT_LT(e.mac_pj(b, 4), e.mac_pj(b + 1, 4)) << "bits " << b;
  }
}

TEST(LayerWorkload, MacAccounting) {
  const LayerWorkload w = make_workload({4, 0, 2, 0}, 10, 9);
  EXPECT_EQ(w.macs_per_filter(), 90);
  EXPECT_EQ(w.total_macs(), 360);
  EXPECT_EQ(w.active_macs(), 180);  // two pruned filters skipped
  EXPECT_EQ(w.weight_bits_total(), (4 + 2) * 9);
}

TEST(EstimateCost, PrunedLayerCostsNothing) {
  const ModelCost cost = estimate_cost({make_workload({0, 0, 0}, 4, 5)});
  EXPECT_EQ(cost.total_pj(), 0.0);
  EXPECT_EQ(cost.active_macs(), 0);
  EXPECT_EQ(cost.total_macs(), 60);
}

TEST(EstimateCost, EnergySplitsAreAllPositive) {
  const ModelCost cost = estimate_cost({make_workload({4, 2, 1}, 16, 27)});
  ASSERT_EQ(cost.layers.size(), 1u);
  const LayerCost& l = cost.layers[0];
  EXPECT_GT(l.compute_pj, 0.0);
  EXPECT_GT(l.weight_sram_pj, 0.0);
  EXPECT_GT(l.act_sram_pj, 0.0);
  EXPECT_GT(l.dram_pj, 0.0);
  EXPECT_NEAR(l.total_pj(), l.compute_pj + l.weight_sram_pj + l.act_sram_pj + l.dram_pj,
              1e-9);
}

TEST(EstimateCost, LowerBitsCostLessEverywhere) {
  const std::vector<LayerWorkload> high = {make_workload({8, 8, 8, 8}, 32, 18)};
  const std::vector<LayerWorkload> low = {make_workload({2, 2, 2, 2}, 32, 18)};
  const ModelCost ch = estimate_cost(high);
  const ModelCost cl = estimate_cost(low);
  EXPECT_LT(cl.layers[0].compute_pj, ch.layers[0].compute_pj);
  EXPECT_LT(cl.layers[0].weight_sram_pj, ch.layers[0].weight_sram_pj);
  EXPECT_LT(cl.layers[0].dram_pj, ch.layers[0].dram_pj);
  // Activation traffic is precision-of-activations bound, not weights.
  EXPECT_EQ(cl.layers[0].act_sram_pj, ch.layers[0].act_sram_pj);
}

TEST(EstimateCost, PruningAFilterRemovesItsShareExactly) {
  const ModelCost dense = estimate_cost({make_workload({3, 3}, 8, 10)});
  const ModelCost pruned = estimate_cost({make_workload({3, 0}, 8, 10)});
  EXPECT_NEAR(pruned.total_pj(), dense.total_pj() / 2.0, 1e-9);
}

TEST(EstimateCost, DramScalesWithPackedBitsNotMacs) {
  // Same MAC count, different storage bits: DRAM term must follow bits.
  const ModelCost a = estimate_cost({make_workload({4, 4}, 8, 10)});
  const ModelCost b = estimate_cost({make_workload({2, 2}, 8, 10)});
  EXPECT_NEAR(a.layers[0].dram_pj, 2.0 * b.layers[0].dram_pj, 1e-9);
}

TEST(UniformWorkloads, OverridesEveryFilter) {
  auto uniform = uniform_workloads({make_workload({0, 1, 4}, 2, 3)}, 8);
  for (const int b : uniform[0].filter_bits) EXPECT_EQ(b, 8);
}

TEST(TraceWorkloads, RejectsBatchedSamples) {
  nn::MlpConfig config;
  config.in_features = 6;
  config.hidden = {8, 8};
  nn::Mlp mlp(config);
  util::Rng rng(1);
  EXPECT_THROW(trace_workloads(mlp, Tensor::randn({2, 6}, rng), 4),
               std::invalid_argument);
}

TEST(TraceWorkloads, MlpLayersHaveOnePositionPerNeuron) {
  nn::MlpConfig config;
  config.in_features = 6;
  config.hidden = {8, 10};
  nn::Mlp mlp(config);
  util::Rng rng(2);
  const auto workloads = trace_workloads(mlp, Tensor::randn({1, 6}, rng), 4);
  ASSERT_EQ(workloads.size(), 1u);  // only the second hidden layer is scored
  EXPECT_FALSE(workloads[0].is_conv);
  EXPECT_EQ(workloads[0].output_positions, 1);
  EXPECT_EQ(workloads[0].weights_per_filter, 8);
  EXPECT_EQ(workloads[0].filter_bits.size(), 10u);
  EXPECT_EQ(workloads[0].filter_bits[0], 32);  // unquantized default
  EXPECT_EQ(workloads[0].act_bits, 4);
}

TEST(TraceWorkloads, VggConvPositionsFollowPooling) {
  nn::VggSmallConfig config;
  config.image_size = 16;
  config.c1 = 4;
  config.c2 = 6;
  config.c3 = 8;
  config.f1 = 12;
  config.f2 = 10;
  config.f3 = 8;
  nn::VggSmall vgg(config);
  util::Rng rng(3);
  const auto workloads = trace_workloads(vgg, Tensor::randn({1, 3, 16, 16}, rng), 2);
  ASSERT_EQ(workloads.size(), 7u);  // layers 1..7 of the paper
  // conv1 runs before the first pool: 16x16 positions.
  EXPECT_EQ(workloads[0].output_positions, 256);
  // FC layers are single-position.
  EXPECT_EQ(workloads[4].output_positions, 1);
  EXPECT_EQ(workloads[5].output_positions, 1);
  EXPECT_EQ(workloads[6].output_positions, 1);
  // Deeper conv layers never have more positions than earlier ones.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_LE(workloads[i].output_positions, workloads[i - 1].output_positions);
  }
}

TEST(TraceWorkloads, ResNetSharedScoredRefsSplitIntoSuffixedWorkloads) {
  // Blocks with a projection shortcut list two quantizable layers in
  // one scored ref; the trace must emit one workload per layer with
  // "#index" suffixes, both at the block's output resolution.
  nn::ResNet20Config config;
  config.image_size = 8;
  config.base_width = 2;
  nn::ResNet20 model(config);
  util::Rng rng(5);
  const auto workloads = trace_workloads(model, Tensor::randn({1, 3, 8, 8}, rng), 4);

  int suffixed = 0;
  for (std::size_t i = 0; i + 1 < workloads.size(); ++i) {
    const auto& w = workloads[i];
    if (w.name.find("#0") == std::string::npos) continue;
    ++suffixed;
    const auto& next = workloads[i + 1];
    EXPECT_NE(next.name.find("#1"), std::string::npos) << next.name;
    EXPECT_EQ(w.output_positions, next.output_positions) << w.name;
    EXPECT_EQ(w.filter_bits.size(), next.filter_bits.size()) << w.name;
  }
  // ResNet-20 has two stage transitions with projection shortcuts.
  EXPECT_EQ(suffixed, 2);
  // 18 convs except that 2 refs carry an extra projection conv -> 20.
  EXPECT_EQ(workloads.size(), 20u);
}

TEST(TraceWorkloads, ReadsAssignedFilterBits) {
  nn::MlpConfig config;
  config.in_features = 5;
  config.hidden = {6, 4};
  nn::Mlp mlp(config);
  auto scored = mlp.scored_layers();
  ASSERT_EQ(scored.size(), 1u);
  scored[0].layers[0]->set_filter_bits({3, 0, 2, 1});
  util::Rng rng(4);
  const auto workloads = trace_workloads(mlp, Tensor::randn({1, 5}, rng), 4);
  EXPECT_EQ(workloads[0].filter_bits, (std::vector<int>{3, 0, 2, 1}));
}

TEST(PeArray, CyclesMatchHandComputation) {
  PeArrayConfig config;
  config.rows = 2;
  config.cols = 2;
  config.layer_overhead_cycles = 10;
  // 3 filters at 4/2/0 bits, 5 positions, 7 weights each:
  // lane_cycles = 35*4 + 35*2 = 210; ceil(210/4) = 53 (+10 overhead).
  const PeArrayReport report =
      simulate_pe_array({make_workload({4, 2, 0}, 5, 7)}, config);
  ASSERT_EQ(report.layers.size(), 1u);
  EXPECT_EQ(report.layers[0].lane_cycles, 210);
  EXPECT_EQ(report.layers[0].cycles, 63);
  EXPECT_EQ(report.total_cycles, 63);
  EXPECT_NEAR(report.seconds, 63e-9, 1e-15);
}

TEST(PeArray, FullyPrunedLayerTakesZeroCycles) {
  const PeArrayReport report = simulate_pe_array({make_workload({0, 0}, 9, 9)});
  EXPECT_EQ(report.total_cycles, 0);
}

TEST(PeArray, HalvingBitsRoughlyHalvesLatency) {
  const auto w8 = make_workload(std::vector<int>(64, 8), 64, 144);
  const auto w4 = make_workload(std::vector<int>(64, 4), 64, 144);
  const PeArrayReport r8 = simulate_pe_array({w8});
  const PeArrayReport r4 = simulate_pe_array({w4});
  const double speedup = r4.speedup_over(r8);
  EXPECT_GT(speedup, 1.9);
  EXPECT_LT(speedup, 2.1);
}

TEST(PeArray, RejectsDegenerateConfig) {
  PeArrayConfig config;
  config.rows = 0;
  EXPECT_THROW(simulate_pe_array({}, config), std::invalid_argument);
}

class PeArrayBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeArrayBitSweep, LatencyIsLinearInUniformBits) {
  const int bits = GetParam();
  PeArrayConfig config;
  config.layer_overhead_cycles = 0;
  const auto w = make_workload(std::vector<int>(16, bits), 128, 64);
  const auto w1 = make_workload(std::vector<int>(16, 1), 128, 64);
  const PeArrayReport r = simulate_pe_array({w}, config);
  const PeArrayReport r1 = simulate_pe_array({w1}, config);
  EXPECT_EQ(r.total_cycles, r1.total_cycles * bits);
}

INSTANTIATE_TEST_SUITE_P(Bits1To8, PeArrayBitSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace cq::hw
