#include <gtest/gtest.h>

#include "core/act_search.h"
#include "nn/models/mlp.h"
#include "nn/models/vgg_small.h"

namespace cq::core {
namespace {

LayerScores make_layer(const std::string& name, std::vector<float> phi) {
  LayerScores layer;
  layer.name = name;
  layer.is_conv = false;
  layer.channels = static_cast<int>(phi.size());
  layer.filter_phi = phi;
  layer.neuron_gamma = std::move(phi);
  return layer;
}

TEST(ActBits, RejectsBadBounds) {
  ActBitsConfig config;
  config.min_bits = 4;
  config.max_bits = 2;
  EXPECT_THROW(allocate_activation_bits({make_layer("a", {1.0f})}, config),
               std::invalid_argument);
  config = {};
  config.avg_bits = 12;
  config.max_bits = 8;
  EXPECT_THROW(allocate_activation_bits({make_layer("a", {1.0f})}, config),
               std::invalid_argument);
}

TEST(ActBits, EmptyScoresGiveEmptyResult) {
  const ActBitsResult result = allocate_activation_bits({});
  EXPECT_TRUE(result.bits.empty());
  EXPECT_EQ(result.achieved_avg, 0.0);
}

TEST(ActBits, UniformScoresGiveUniformBits) {
  ActBitsConfig config;
  config.avg_bits = 4;
  const ActBitsResult result = allocate_activation_bits(
      {make_layer("a", {2.0f, 2.0f}), make_layer("b", {2.0f}), make_layer("c", {2.0f})},
      config);
  for (const int b : result.bits) EXPECT_EQ(b, 4);
  EXPECT_EQ(result.achieved_avg, 4.0);
}

TEST(ActBits, AllZeroScoresDegradeToUniform) {
  ActBitsConfig config;
  config.avg_bits = 3;
  const ActBitsResult result = allocate_activation_bits(
      {make_layer("a", {0.0f}), make_layer("b", {0.0f})}, config);
  for (const int b : result.bits) EXPECT_EQ(b, 3);
}

TEST(ActBits, HigherScoreNeverGetsFewerBits) {
  ActBitsConfig config;
  config.avg_bits = 4;
  config.min_bits = 1;
  config.max_bits = 8;
  const ActBitsResult result = allocate_activation_bits(
      {make_layer("low", {0.5f}), make_layer("mid", {3.0f}), make_layer("high", {9.0f}),
       make_layer("mid2", {3.0f})},
      config);
  EXPECT_LE(result.bits[0], result.bits[1]);
  EXPECT_LE(result.bits[1], result.bits[2]);
  EXPECT_EQ(result.bits[1], result.bits[3]);
}

TEST(ActBits, AverageNeverExceedsBudget) {
  for (int avg = 1; avg <= 8; ++avg) {
    ActBitsConfig config;
    config.avg_bits = avg;
    config.min_bits = 1;
    config.max_bits = 8;
    const ActBitsResult result = allocate_activation_bits(
        {make_layer("a", {10.0f}), make_layer("b", {9.5f}), make_layer("c", {0.1f}),
         make_layer("d", {0.05f})},
        config);
    EXPECT_LE(result.achieved_avg, static_cast<double>(avg)) << "avg " << avg;
    for (const int b : result.bits) {
      EXPECT_GE(b, 1);
      EXPECT_LE(b, 8);
    }
  }
}

TEST(ActBits, SkewedScoresSpreadTheBits) {
  ActBitsConfig config;
  config.avg_bits = 4;
  const ActBitsResult result = allocate_activation_bits(
      {make_layer("hot", {10.0f}), make_layer("cold", {0.2f})}, config);
  EXPECT_GT(result.bits[0], result.bits[1]);
  EXPECT_GT(result.bits[0], 4);
  EXPECT_LT(result.bits[1], 4);
}

TEST(ApplyActBits, RejectsSizeMismatch) {
  nn::Mlp model({6, {8, 8, 8}, 3, 1});
  ActBitsResult result;
  result.bits = {4};  // model has two scored layers
  EXPECT_THROW(apply_activation_bits(model, result), std::invalid_argument);
}

TEST(ApplyActBits, SetsScoredQuantizersOnly) {
  nn::VggSmallConfig config;
  config.image_size = 8;
  config.c1 = 4;
  config.c2 = 4;
  config.c3 = 4;
  config.f1 = 8;
  config.f2 = 8;
  config.f3 = 8;
  nn::VggSmall model(config);
  model.set_activation_bits(4);  // includes the first layer's quantizer

  ActBitsResult result;
  const auto scored = model.scored_layers();
  for (std::size_t i = 0; i < scored.size(); ++i) {
    result.layer_names.push_back(scored[i].name);
    result.bits.push_back(static_cast<int>(i % 3) + 2);
  }
  apply_activation_bits(model, result);

  for (std::size_t i = 0; i < scored.size(); ++i) {
    ASSERT_NE(scored[i].act_quant, nullptr) << scored[i].name;
    EXPECT_EQ(scored[i].act_quant->bits(), result.bits[i]) << scored[i].name;
  }
  // The first layer's quantizer (not scored) kept the uniform setting.
  EXPECT_EQ(model.activation_quantizers().front()->bits(), 4);
}

TEST(ApplyActBits, EveryModelZooScoredLayerHasAQuantizer) {
  nn::Mlp mlp({6, {8, 8, 8}, 3, 1});
  for (const auto& ref : mlp.scored_layers()) EXPECT_NE(ref.act_quant, nullptr);

  nn::VggSmallConfig vgg_cfg;
  vgg_cfg.image_size = 8;
  vgg_cfg.c1 = 4;
  vgg_cfg.c2 = 4;
  vgg_cfg.c3 = 4;
  vgg_cfg.f1 = 8;
  vgg_cfg.f2 = 8;
  vgg_cfg.f3 = 8;
  nn::VggSmall vgg(vgg_cfg);
  for (const auto& ref : vgg.scored_layers()) EXPECT_NE(ref.act_quant, nullptr);
}

}  // namespace
}  // namespace cq::core
