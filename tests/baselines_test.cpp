#include <gtest/gtest.h>

#include "baselines/allocators.h"
#include "baselines/apn.h"
#include "baselines/wrapnet.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"

namespace cq::baselines {
namespace {

data::DataSplit make_split(std::uint64_t seed) {
  util::Rng rng(seed);
  auto gen = [&](int per_class) {
    data::Dataset d;
    const int n = 3 * per_class;
    d.images = nn::Tensor({n, 6});
    d.labels.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int cls = i / per_class;
      for (int f = 0; f < 6; ++f) {
        d.images.at(i, f) = static_cast<float>(rng.normal(f % 3 == cls ? 1.5 : 0.0, 0.4));
      }
      d.labels[static_cast<std::size_t>(i)] = cls;
    }
    return d;
  };
  data::DataSplit split;
  split.train = gen(40);
  split.val = gen(10);
  split.test = gen(20);
  return split;
}

nn::Mlp trained(const data::DataSplit& split, std::uint64_t seed) {
  nn::Mlp model({6, {24, 16, 12}, 3, seed});
  nn::TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 20;
  tc.lr = 0.05;
  nn::Trainer trainer(tc);
  trainer.fit(model, split.train.images, split.train.labels);
  return model;
}

TEST(ApplyUniformBits, SetsEveryScoredFilter) {
  nn::Mlp model({6, {12, 10, 8}, 3, 1});
  const quant::BitArrangement arr = apply_uniform_bits(model, 3);
  EXPECT_DOUBLE_EQ(arr.average_bits(), 3.0);
  ASSERT_EQ(arr.layers().size(), 2u);  // first layer excluded
  for (const auto& scored : model.scored_layers()) {
    for (const auto* layer : scored.layers) {
      for (const int b : layer->filter_bits()) EXPECT_EQ(b, 3);
    }
  }
}

TEST(Apn, QuantizesAndRecoversAccuracy) {
  const data::DataSplit split = make_split(21);
  nn::Mlp model = trained(split, 2);
  const double fp = nn::Trainer::evaluate(model, split.test.images, split.test.labels);
  ASSERT_GT(fp, 0.8);

  ApnConfig cfg;
  cfg.weight_bits = 3;
  cfg.activation_bits = 3;
  cfg.refine.epochs = 8;
  cfg.refine.batch_size = 20;
  cfg.refine.lr = 0.02;
  ApnQuantizer apn(cfg);
  const BaselineReport report = apn.run(model, split);
  EXPECT_DOUBLE_EQ(report.achieved_avg_bits, 3.0);
  EXPECT_NEAR(report.fp_accuracy, fp, 1e-9);
  EXPECT_GT(report.quant_accuracy, fp - 0.25);
  for (nn::ActQuant* aq : model.activation_quantizers()) EXPECT_EQ(aq->bits(), 3);
}

TEST(Apn, RefinementHelpsAtLowBits) {
  const data::DataSplit split = make_split(23);
  nn::Mlp model = trained(split, 3);
  ApnConfig cfg;
  cfg.weight_bits = 1;
  cfg.activation_bits = 4;
  cfg.refine.epochs = 10;
  cfg.refine.batch_size = 20;
  cfg.refine.lr = 0.02;
  ApnQuantizer apn(cfg);
  const BaselineReport report = apn.run(model, split);
  EXPECT_GE(report.quant_accuracy, report.quant_accuracy_pre_refine - 0.05);
}

TEST(WrapNet, RunsAndWrapIsApplied) {
  const data::DataSplit split = make_split(25);
  nn::Mlp model = trained(split, 4);
  WnConfig cfg;
  cfg.weight_bits = 2;
  cfg.activation_bits = 4;
  cfg.accumulator_bits = 12;
  cfg.refine.epochs = 4;
  cfg.refine.batch_size = 20;
  cfg.refine.lr = 0.02;
  WnQuantizer wn(cfg);
  const BaselineReport report = wn.run(model, split);
  EXPECT_DOUBLE_EQ(report.achieved_avg_bits, 2.0);
  // The wrap hook must be active on scored layers.
  for (const auto& scored : model.scored_layers()) {
    auto* fc = dynamic_cast<nn::Linear*>(scored.layers.front());
    ASSERT_NE(fc, nullptr);
    EXPECT_GT(fc->accumulator_wrap(), 0.0f);
  }
}

TEST(WrapNet, NarrowAccumulatorHurtsMore) {
  const data::DataSplit split = make_split(27);
  nn::Mlp wide_model = trained(split, 5);
  auto narrow_model = wide_model.clone();  // same trained weights

  WnConfig wide;
  wide.weight_bits = 2;
  wide.activation_bits = 4;
  wide.accumulator_bits = 30;  // effectively no wrapping
  wide.refine.epochs = 0;      // isolate the wrap effect
  WnConfig narrow = wide;
  narrow.accumulator_bits = 6;  // aggressive wrapping

  const BaselineReport wide_report = WnQuantizer(wide).run(wide_model, split);
  const BaselineReport narrow_report = WnQuantizer(narrow).run(*narrow_model, split);
  EXPECT_GE(wide_report.quant_accuracy_pre_refine,
            narrow_report.quant_accuracy_pre_refine);
}

TEST(Allocators, MagnitudeScoresNormalizedPerLayer) {
  nn::Mlp model({6, {12, 10, 8}, 3, 6});
  const auto scores = magnitude_scores(model);
  ASSERT_EQ(scores.size(), 2u);
  for (const auto& layer : scores) {
    float mx = 0.0f;
    for (const float v : layer.filter_phi) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f + 1e-6f);
      mx = std::max(mx, v);
    }
    EXPECT_NEAR(mx, 1.0f, 1e-6f);  // layer max normalized to 1
    EXPECT_EQ(layer.filter_phi.size(), static_cast<std::size_t>(layer.channels));
  }
}

TEST(Allocators, RandomScoresDeterministicPerSeed) {
  nn::Mlp model({6, {12, 10, 8}, 3, 7});
  const auto a = random_scores(model, 42);
  const auto b = random_scores(model, 42);
  const auto c = random_scores(model, 43);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].filter_phi, b[0].filter_phi);
  EXPECT_NE(a[0].filter_phi, c[0].filter_phi);
}

TEST(Allocators, ScoresUsableByThresholdSearch) {
  const data::DataSplit split = make_split(29);
  nn::Mlp model = trained(split, 8);
  const auto scores = magnitude_scores(model);
  core::SearchConfig cfg;
  cfg.max_bits = 4;
  cfg.desired_avg_bits = 2.0;
  cfg.t1 = 0.4;
  cfg.eval_samples = 30;
  core::ThresholdSearch search(cfg);
  const core::SearchResult result = search.run(model, scores, split.val);
  EXPECT_LE(result.achieved_avg_bits, 2.0 + 1e-9);
}

}  // namespace
}  // namespace cq::baselines
