// End-to-end integration tests: full CQ pipeline and baselines on a
// small conv network and the synthetic vision corpus — the complete
// code path the figure benches exercise, at test-suite size.

#include <gtest/gtest.h>

#include "baselines/apn.h"
#include "baselines/wrapnet.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"

namespace cq {
namespace {

struct VisionFixture : public testing::Test {
  static data::DataSplit* split;
  static nn::VggSmall* model;
  static double fp_acc;

  static void SetUpTestSuite() {
    data::SyntheticVisionConfig cfg;
    cfg.num_classes = 5;
    cfg.image_size = 8;
    cfg.train_per_class = 30;
    cfg.val_per_class = 10;
    cfg.test_per_class = 10;
    cfg.class_separation = 0.8f;
    cfg.noise_stddev = 0.15f;
    split = new data::DataSplit(data::make_synthetic_vision(cfg));

    nn::VggSmallConfig mc;
    mc.image_size = 8;
    mc.num_classes = 5;
    mc.c1 = 8;
    mc.c2 = 8;
    mc.c3 = 8;
    mc.f1 = 16;
    mc.f2 = 12;
    mc.f3 = 12;
    model = new nn::VggSmall(mc);

    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.batch_size = 25;
    tc.lr = 0.02;
    nn::Trainer trainer(tc);
    trainer.fit(*model, split->train.images, split->train.labels);
    fp_acc = nn::Trainer::evaluate(*model, split->test.images, split->test.labels);
  }

  static void TearDownTestSuite() {
    delete model;
    model = nullptr;
    delete split;
    split = nullptr;
  }
};

data::DataSplit* VisionFixture::split = nullptr;
nn::VggSmall* VisionFixture::model = nullptr;
double VisionFixture::fp_acc = 0.0;

TEST_F(VisionFixture, FpModelLearns) { EXPECT_GT(fp_acc, 0.6); }

TEST_F(VisionFixture, CqPipelineProducesUsableThreeBitModel) {
  // The fixture network is far leaner than the paper's, so paper-level
  // accuracy retention is out of reach at this scale (every filter
  // matters; pruning 25% of weights to reach B=3 from the 4-bit start
  // genuinely hurts). The invariants that must hold regardless of
  // scale: the budget is met, refinement improves on the raw
  // quantized model, and the result is far above chance (0.2).
  auto m = model->clone();
  core::CqConfig cfg;
  cfg.importance.samples_per_class = 10;
  cfg.search.desired_avg_bits = 3.0;
  cfg.search.t1 = 0.75;
  cfg.search.decay = 0.9;
  cfg.search.eval_samples = 50;
  cfg.refine.epochs = 6;
  cfg.refine.lr = 0.02;
  cfg.refine.batch_size = 25;
  cfg.activation_bits = 4;
  core::CqPipeline pipeline(cfg);
  const core::CqReport report = pipeline.run(*m, *split);
  EXPECT_LE(report.achieved_avg_bits, 3.0 + 1e-9);
  EXPECT_GE(report.quant_accuracy, report.quant_accuracy_pre_refine - 0.05);
  EXPECT_GT(report.quant_accuracy, 0.45);
}

TEST_F(VisionFixture, CqBudgetsAreOrderedInAccuracy) {
  // More bits should not be (much) worse — weak monotonicity with a
  // tolerance for training noise.
  double acc_low = 0.0;
  double acc_high = 0.0;
  for (const double bits : {1.0, 4.0}) {
    auto m = model->clone();
    core::CqConfig cfg;
    cfg.importance.samples_per_class = 10;
    cfg.search.desired_avg_bits = bits;
    cfg.search.t1 = 0.4;
    cfg.search.eval_samples = 50;
    cfg.refine.epochs = 3;
    cfg.refine.batch_size = 25;
    cfg.activation_bits = 4;
    core::CqPipeline pipeline(cfg);
    const core::CqReport report = pipeline.run(*m, *split);
    (bits == 1.0 ? acc_low : acc_high) = report.quant_accuracy;
  }
  EXPECT_GE(acc_high, acc_low - 0.1);
}

TEST_F(VisionFixture, ApnRunsOnConvNetwork) {
  auto m = model->clone();
  baselines::ApnConfig cfg;
  cfg.weight_bits = 3;
  cfg.activation_bits = 3;
  cfg.refine.epochs = 3;
  cfg.refine.batch_size = 25;
  const baselines::BaselineReport report = baselines::ApnQuantizer(cfg).run(*m, *split);
  EXPECT_DOUBLE_EQ(report.achieved_avg_bits, 3.0);
  EXPECT_GT(report.quant_accuracy, fp_acc - 0.3);
}

TEST_F(VisionFixture, WrapNetRunsOnConvNetwork) {
  auto m = model->clone();
  baselines::WnConfig cfg;
  cfg.weight_bits = 2;
  cfg.activation_bits = 4;
  cfg.accumulator_bits = 14;
  cfg.refine.epochs = 2;
  cfg.refine.batch_size = 25;
  const baselines::BaselineReport report = baselines::WnQuantizer(cfg).run(*m, *split);
  EXPECT_DOUBLE_EQ(report.achieved_avg_bits, 2.0);
  EXPECT_GE(report.quant_accuracy, 0.0);
}

TEST_F(VisionFixture, SearchTraceIsWellFormedOnConvNet) {
  auto m = model->clone();
  core::ImportanceCollector collector({1e-50, 10});
  const auto scores = collector.collect(*m, split->val);
  core::SearchConfig cfg;
  cfg.desired_avg_bits = 2.0;
  cfg.t1 = 0.4;
  cfg.eval_samples = 50;
  core::ThresholdSearch search(cfg);
  const core::SearchResult result = search.run(*m, scores, split->val);
  EXPECT_LE(result.achieved_avg_bits, 2.0 + 1e-9);
  ASSERT_FALSE(result.trace.empty());
  for (std::size_t i = 1; i < result.thresholds.size(); ++i) {
    EXPECT_GE(result.thresholds[i], result.thresholds[i - 1]);
  }
}

TEST_F(VisionFixture, ResNetCqSmoke) {
  nn::ResNet20Config rc;
  rc.base_width = 1;
  rc.image_size = 8;
  rc.num_classes = 5;
  nn::ResNet20 resnet(rc);
  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 25;
  tc.lr = 0.05;
  nn::Trainer trainer(tc);
  trainer.fit(resnet, split->train.images, split->train.labels);

  core::CqConfig cfg;
  cfg.importance.samples_per_class = 10;
  cfg.search.desired_avg_bits = 2.0;
  cfg.search.t1 = 0.4;
  cfg.search.eval_samples = 50;
  cfg.refine.epochs = 2;
  cfg.refine.batch_size = 25;
  cfg.activation_bits = 4;
  core::CqPipeline pipeline(cfg);
  const core::CqReport report = pipeline.run(resnet, *split);
  EXPECT_LE(report.achieved_avg_bits, 2.0 + 1e-9);
  // Downsample convs share bits with their block's conv2.
  for (const auto& scored : resnet.scored_layers()) {
    if (scored.layers.size() == 2) {
      EXPECT_EQ(scored.layers[0]->filter_bits(), scored.layers[1]->filter_bits());
    }
  }
}

}  // namespace
}  // namespace cq
