// The static plan verifier's contract tests.
//
// Two halves. (1) Mutation tests: take the model-zoo plans, apply one
// targeted corruption per test — swapped slot ids, a shrunk arena,
// an overlapping interval, an illegal in-place alias, a weight code
// inflated past its bit-width — and assert verify_plan names exactly
// the violated rule at the right op. A verifier that fails these
// would pass broken optimizer-pass output straight to the kernels.
// (2) Property tests pinning the shared overflow-bound helper
// (deploy/overflow.h): the bound is achievable (tight), safe over
// random code/activation draws, saturates instead of wrapping, and is
// byte-for-byte the number blocked::pack_codes dispatches on.
//
// Runs in the TSan and ASan/UBSan CI lanes: "zoo plans verify clean"
// must hold under the sanitizers too.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "deploy/backend.h"
#include "deploy/overflow.h"
#include "deploy/passes/passes.h"
#include "deploy/plan.h"
#include "deploy/verify.h"
#include "quant/uniform.h"
#include "serve/engine_session.h"
#include "serve_fixtures.h"
#include "util/rng.h"

namespace cq::deploy {
namespace {

ExecutionPlan vgg_plan() { return compile_plan(serve::tiny_vgg_artifact()); }
ExecutionPlan mlp_plan() { return compile_plan(serve::tiny_mlp_artifact()); }
ExecutionPlan resnet_plan() { return compile_plan(serve::tiny_resnet_artifact()); }

int find_op(const ExecutionPlan& plan, OpKind kind) {
  for (std::size_t i = 0; i < plan.ops().size(); ++i) {
    if (plan.ops()[i].kind == kind) return static_cast<int>(i);
  }
  return -1;
}

/// Passes when the report contains a finding for `rule`; `op` == -2
/// accepts any op index, otherwise the finding must sit on that op.
::testing::AssertionResult has_finding(const VerifyReport& report, VerifyRule rule,
                                       int op = -2) {
  for (const PlanDiagnostic& d : report.diagnostics) {
    if (d.rule == rule && (op == -2 || d.op == op)) {
      return ::testing::AssertionSuccess();
    }
  }
  return ::testing::AssertionFailure()
         << "no [" << verify_rule_name(rule) << "] finding"
         << (op == -2 ? "" : " at op #" + std::to_string(op)) << "; report:\n"
         << (report.clean() ? "  (clean)\n" : format_diagnostics(report));
}

TEST(PlanVerify, ZooPlansVerifyClean) {
  for (const ExecutionPlan& plan : {vgg_plan(), mlp_plan(), resnet_plan()}) {
    const VerifyReport report = verify_plan(plan);
    EXPECT_TRUE(report.clean()) << format_diagnostics(report);
    // Every integer op earns a certificate, and the int64 safety the
    // scalar kernels rely on is certified for all of them.
    std::size_t integer_ops = 0;
    for (const PlanOp& op : plan.ops()) {
      integer_ops +=
          (op.kind == OpKind::IntConv || op.kind == OpKind::IntLinear) ? 1 : 0;
    }
    ASSERT_EQ(report.certificates.size(), integer_ops);
    for (const IntOpCertificate& cert : report.certificates) {
      EXPECT_TRUE(cert.fits_int64);
      EXPECT_GT(cert.bound, 0);
      // The int8 claim must be exactly the shared helper SimdBackend's
      // resolve_path evaluates, and can never outrank the int32 one.
      const PlanOp& op = plan.ops()[static_cast<std::size_t>(cert.op)];
      EXPECT_EQ(cert.int8_fast_path,
                int_reduction_fits_int8_madd(cert.max_abs_weight, op.act_bits,
                                             cert.terms));
      if (cert.int8_fast_path) {
        EXPECT_TRUE(cert.int32_fast_path);
      }
    }
  }
}

TEST(PlanVerify, SwappedSlotIdIsDefBeforeUse) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  // Op 0 now reads the value the *last* op defines: a use before def.
  rw.ops()[0].in0 = rw.ops().back().out;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::DefBeforeUse, 0));
}

TEST(PlanVerify, DoubleWriteIsSingleAssignment) {
  ExecutionPlan plan = mlp_plan();
  PlanRewriter rw(plan);
  const int victim = static_cast<int>(rw.ops().size()) - 1;
  rw.ops()[static_cast<std::size_t>(victim)].out =
      rw.ops()[static_cast<std::size_t>(victim) - 1].out;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::SingleAssignment, victim));
}

TEST(PlanVerify, In1OnNonAddIsDangling) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  const int relu = find_op(plan, OpKind::Relu);
  ASSERT_GE(relu, 0);
  rw.ops()[static_cast<std::size_t>(relu)].in1 = plan.input_slot();
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::DanglingIn1, relu));
}

TEST(PlanVerify, AddWithoutIn1IsDangling) {
  ExecutionPlan plan = resnet_plan();
  PlanRewriter rw(plan);
  const int add = find_op(plan, OpKind::Add);
  ASSERT_GE(add, 0);
  rw.ops()[static_cast<std::size_t>(add)].in1 = -1;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::DanglingIn1, add));
}

TEST(PlanVerify, WrongNumClassesIsIoSlots) {
  ExecutionPlan plan = mlp_plan();
  PlanRewriter rw(plan);
  ++rw.num_classes();
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::IoSlots, -1));
}

TEST(PlanVerify, CorruptedConvGeometryIsShape) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  const int conv = find_op(plan, OpKind::IntConv);
  ASSERT_GE(conv, 0);
  // The recorded output height no longer re-derives from the input
  // geometry; the slot shape then disagrees too.
  ++rw.ops()[static_cast<std::size_t>(conv)].out_h;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::Shape, conv));
}

TEST(PlanVerify, ShrunkArenaIsArenaBounds) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  ASSERT_GT(rw.arena_floats(), 0u);
  // The high-water mark is exactly reached by some interval, so any
  // shrink pushes at least one slot out of bounds.
  --rw.arena_floats();
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::ArenaBounds, -1));
}

TEST(PlanVerify, OverlappingLiveIntervalsAreArenaOverlap) {
  ExecutionPlan plan = resnet_plan();
  PlanRewriter rw(plan);
  // Move the residual shortcut onto the main path's interval: both
  // are live when the Add runs, and they are not producer/consumer of
  // one another, so no alias exception applies.
  const int add = find_op(plan, OpKind::Add);
  ASSERT_GE(add, 0);
  const PlanOp& op = plan.ops()[static_cast<std::size_t>(add)];
  ASSERT_NE(op.in0, op.in1);
  rw.slots()[static_cast<std::size_t>(op.in1)].offset =
      rw.slots()[static_cast<std::size_t>(op.in0)].offset;
  const VerifyReport report = verify_plan(plan);
  EXPECT_TRUE(has_finding(report, VerifyRule::ArenaOverlap));
}

TEST(PlanVerify, InPlaceAliasOnConvIsIllegal) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  const int conv = find_op(plan, OpKind::IntConv);
  ASSERT_GE(conv, 0);
  const PlanOp& op = plan.ops()[static_cast<std::size_t>(conv)];
  // A convolution may never run in place: it reads every input patch
  // while writing outputs. Point its output at the input interval.
  rw.slots()[static_cast<std::size_t>(op.out)].offset =
      rw.slots()[static_cast<std::size_t>(op.in0)].offset;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::Alias, conv));
}

TEST(PlanVerify, BadLayerIndexIsIntLayer) {
  ExecutionPlan plan = mlp_plan();
  PlanRewriter rw(plan);
  const int linear = find_op(plan, OpKind::IntLinear);
  ASSERT_GE(linear, 0);
  rw.ops()[static_cast<std::size_t>(linear)].layer = 999;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::IntLayer, linear));
}

TEST(PlanVerify, InflatedCodeMagnitudeIsCodeRange) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  const int conv = find_op(plan, OpKind::IntConv);
  ASSERT_GE(conv, 0);
  const int layer_index = plan.ops()[static_cast<std::size_t>(conv)].layer;
  IntegerLayer& layer = rw.integer_layers()[static_cast<std::size_t>(layer_index)];
  // First unpruned filter: push its first code one past the largest
  // value its declared bit-width can hold — the overflow bound that
  // licenses the int32 fast path no longer covers this layer.
  for (std::size_t k = 0; k < layer.filter_bits.size(); ++k) {
    if (layer.filter_bits[k] == 0) continue;
    layer.codes[k * static_cast<std::size_t>(layer.weights_per_filter)] =
        quant::levels_for_bits(layer.filter_bits[k]);
    break;
  }
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::CodeRange, conv));
}

TEST(PlanVerify, InvalidActBitsFailOverflowCertification) {
  ExecutionPlan plan = mlp_plan();
  PlanRewriter rw(plan);
  const int linear = find_op(plan, OpKind::IntLinear);
  ASSERT_GE(linear, 0);
  rw.ops()[static_cast<std::size_t>(linear)].act_bits = 0;
  const VerifyReport report = verify_plan(plan);
  // Both the grid sanity rule and the (saturated, uncertifiable)
  // accumulator bound fire on the same op.
  EXPECT_TRUE(has_finding(report, VerifyRule::IntLayer, linear));
  EXPECT_TRUE(has_finding(report, VerifyRule::Overflow, linear));
}

TEST(PlanVerify, EpilogueFlagOnNonComputeOpIsEpilogue) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  const int relu = find_op(plan, OpKind::Relu);
  ASSERT_GE(relu, 0);
  // Epilogue stages only exist on compute ops; a Relu claiming one is
  // optimizer-pass output the backends would silently ignore.
  rw.ops()[static_cast<std::size_t>(relu)].ep_relu = true;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::Epilogue, relu));
}

TEST(PlanVerify, FusedBnVectorSizeMismatchIsEpilogue) {
  ExecutionPlan plan = resnet_plan();
  optimize_plan(plan);
  PlanRewriter rw(plan);
  int fused = -1;
  for (std::size_t i = 0; i < plan.ops().size(); ++i) {
    if (plan.ops()[i].ep_bn) fused = static_cast<int>(i);
  }
  ASSERT_GE(fused, 0) << "optimizer produced no BN epilogues on ResNet20";
  rw.ops()[static_cast<std::size_t>(fused)].bn_gamma.pop_back();
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::Epilogue, fused));
}

TEST(PlanVerify, InCodesWithoutCodeProducerIsCodeDomain) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  const int conv = find_op(plan, OpKind::IntConv);
  ASSERT_GE(conv, 0);
  // The unoptimized plan's conv inputs are quantized *activations*
  // (EncodeAct output), not integer codes; adopting them as codes
  // would silently mis-scale the whole layer.
  rw.ops()[static_cast<std::size_t>(conv)].in_codes = true;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::CodeDomain, conv));
}

TEST(PlanVerify, CodeConsumerGridMismatchIsCodeDomain) {
  ExecutionPlan plan = resnet_plan();
  optimize_plan(plan);
  PlanRewriter rw(plan);
  int consumer = -1;
  for (std::size_t i = 0; i < plan.ops().size(); ++i) {
    if (plan.ops()[i].in_codes) consumer = static_cast<int>(i);
  }
  ASSERT_GE(consumer, 0) << "optimizer propagated no codes on ResNet20";
  // The consumer now decodes on a different grid than its producer
  // encoded on — exactly the inexact-rescale case propagation must
  // never produce.
  ++rw.ops()[static_cast<std::size_t>(consumer)].act_bits;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::CodeDomain, consumer));
}

TEST(PlanVerify, CodeTypedSlotConsumedRawIsCodeDomain) {
  ExecutionPlan plan = resnet_plan();
  optimize_plan(plan);
  PlanRewriter rw(plan);
  int consumer = -1;
  for (std::size_t i = 0; i < plan.ops().size(); ++i) {
    if (plan.ops()[i].in_codes) consumer = static_cast<int>(i);
  }
  ASSERT_GE(consumer, 0);
  // The producer still writes integer codes; a consumer treating them
  // as raw activations would re-encode the code values themselves.
  rw.ops()[static_cast<std::size_t>(consumer)].in_codes = false;
  EXPECT_TRUE(has_finding(verify_plan(plan), VerifyRule::CodeDomain, consumer));
}

TEST(PlanVerify, StrictSessionServesCleanPlans) {
  serve::EngineSession session(resnet_plan(), 1, {}, nullptr,
                               serve::PlanCheck::kStrict);
  const tensor::Tensor batch = serve::random_batch(session.sample_shape(), 2, 99);
  const tensor::Tensor out = session.run(batch);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, session.num_classes()}));
}

TEST(PlanVerify, StrictSessionRefusesCorruptPlans) {
  ExecutionPlan plan = vgg_plan();
  PlanRewriter rw(plan);
  rw.ops()[0].in0 = rw.ops().back().out;
  EXPECT_THROW(serve::EngineSession(std::move(plan), 1, {}, nullptr,
                                    serve::PlanCheck::kStrict),
               ArtifactError);
}

// ---- the shared overflow-bound helper (deploy/overflow.h) ----

/// Mixed-bit integer layer including pruned rows, codes drawn over the
/// full range of each filter's bit-width.
IntegerLayer random_layer(int filters, std::int64_t per_filter, util::Rng& rng) {
  IntegerLayer layer;
  layer.num_filters = filters;
  layer.weights_per_filter = per_filter;
  layer.range_hi = 1.0f;
  const int pattern[6] = {2, 4, 0, 3, 1, 2};
  layer.filter_bits.resize(static_cast<std::size_t>(filters));
  layer.codes.assign(static_cast<std::size_t>(filters) *
                         static_cast<std::size_t>(per_filter),
                     0);
  layer.bias.assign(static_cast<std::size_t>(filters), 0.0f);
  for (int k = 0; k < filters; ++k) {
    const int bits = pattern[k % 6];
    layer.filter_bits[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(bits);
    if (bits == 0) continue;
    std::int32_t* row = layer.codes.data() +
                        static_cast<std::size_t>(k) * static_cast<std::size_t>(per_filter);
    for (std::int64_t j = 0; j < per_filter; ++j) {
      row[j] = static_cast<std::int32_t>(
          rng.uniform_int(0, quant::levels_for_bits(bits) - 1));
    }
  }
  return layer;
}

TEST(OverflowBound, MatchesBlockedPackingExactly) {
  // The no-disagreement property the refactor exists for: the bound
  // input the blocked backend dispatches on IS the shared helper's.
  util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const IntegerLayer layer =
        random_layer(3 + trial % 13, 5 + trial % 17, rng);
    const blocked::PackedCodes packed = blocked::pack_codes(layer);
    ASSERT_TRUE(packed.usable);
    EXPECT_EQ(packed.max_abs_weight, max_abs_centered_code(layer));
  }
}

TEST(OverflowBound, BoundIsAchievedByExtremalCodes) {
  // Tightness: all-extremal codes and activations reach the bound
  // exactly, so it cannot be loosened without admitting overflow.
  for (int bits = 1; bits <= 8; ++bits) {
    for (int act_bits = 1; act_bits <= 8; act_bits += 3) {
      const std::int64_t terms = 37;
      const std::int32_t centered_max = quant::levels_for_bits(bits) - 1;
      const std::int64_t act_max = quant::levels_for_bits(act_bits) - 1;
      std::int64_t acc = 0;
      for (std::int64_t j = 0; j < terms; ++j) acc += centered_max * act_max;
      EXPECT_EQ(acc, int_reduction_bound(centered_max, act_bits, terms));
    }
  }
}

TEST(OverflowBound, RandomReductionsStayBelowBound) {
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int bits = 1 + static_cast<int>(rng.uniform_int(0, 7));
    const int act_bits = 1 + static_cast<int>(rng.uniform_int(0, 7));
    const std::int64_t terms = 1 + rng.uniform_int(0, 63);
    const std::int32_t levels = quant::levels_for_bits(bits);
    const std::int64_t act_max = quant::levels_for_bits(act_bits) - 1;
    std::int64_t acc = 0;
    std::int32_t max_abs = 0;
    for (std::int64_t j = 0; j < terms; ++j) {
      const auto code = static_cast<std::int32_t>(rng.uniform_int(0, levels - 1));
      const std::int32_t centered = 2 * code - (levels - 1);
      const auto act = rng.uniform_int(0, act_max);
      acc += static_cast<std::int64_t>(centered) * act;
      max_abs = std::max(max_abs, centered < 0 ? -centered : centered);
    }
    const std::int64_t bound = int_reduction_bound(max_abs, act_bits, terms);
    EXPECT_LE(acc < 0 ? -acc : acc, bound);
    EXPECT_EQ(int_reduction_fits_int32(max_abs, act_bits, terms),
              bound <= std::numeric_limits<std::int32_t>::max());
  }
}

TEST(OverflowBound, Int8MaddEligibilityPinsEveryEdge) {
  // Comfortably inside every bound: maddubs pair sums stay exact.
  EXPECT_TRUE(int_reduction_fits_int8_madd(15, 3, 1024));
  // The pair-sum bound itself: 2 * max|w| * act_max <= 32767.
  // max|w| = 127, act_bits = 8 -> 2*127*255 = 64770 > 32767: refused.
  EXPECT_FALSE(int_reduction_fits_int8_madd(127, 8, 8));
  // ...but 127 with 7-bit acts is 2*127*127 = 32258 <= 32767: allowed.
  EXPECT_TRUE(int_reduction_fits_int8_madd(127, 7, 8));
  // Weights must fit the signed int8 operand of maddubs.
  EXPECT_FALSE(int_reduction_fits_int8_madd(128, 3, 8));
  // Activations must fit the unsigned 8-bit operand.
  EXPECT_FALSE(int_reduction_fits_int8_madd(15, 9, 8));
  EXPECT_FALSE(int_reduction_fits_int8_madd(15, 0, 8));
  // The int32 accumulator bound still applies to the full reduction.
  EXPECT_FALSE(int_reduction_fits_int8_madd(127, 7, std::int64_t{1} << 40));
}

TEST(OverflowBound, SaturatesInsteadOfWrapping) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  // A product that would wrap int64 saturates and certifies nothing.
  EXPECT_EQ(int_reduction_bound(std::numeric_limits<std::int32_t>::max(), 16,
                                kMax / 2),
            kMax);
  EXPECT_FALSE(int_reduction_fits_int64(std::numeric_limits<std::int32_t>::max(),
                                        16, kMax / 2));
  EXPECT_FALSE(int_reduction_fits_int32(std::numeric_limits<std::int32_t>::max(),
                                        16, kMax / 2));
  // Unencodable activation bit-widths certify nothing either.
  EXPECT_EQ(int_reduction_bound(1, 0, 1), kMax);
  EXPECT_EQ(int_reduction_bound(1, 17, 1), kMax);
  EXPECT_FALSE(int_reduction_fits_int32(1, 0, 1));
  // Degenerate reductions are exactly zero.
  EXPECT_EQ(int_reduction_bound(0, 4, 10), 0);
  EXPECT_EQ(int_reduction_bound(5, 4, 0), 0);
  EXPECT_TRUE(int_reduction_fits_int64(0, 4, 10));
}

}  // namespace
}  // namespace cq::deploy
