// cq::net tests: CQN1 protocol framing (round trips, incremental
// decode, every malformed-frame class, deterministic fuzz), the socket
// front end over a live ModelRegistry (localhost round trips
// byte-identical to in-process EngineSession::run for every zoo
// fixture), and the failure paths a network server must absorb:
// mid-stream disconnects, garbage streams, reply-direction frames,
// pipelined overload answered with explicit kBusy.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/front_end.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "serve/engine_session.h"
#include "serve/model_registry.h"
#include "serve_fixtures.h"
#include "util/rng.h"

namespace cq {
namespace {

net::Frame decode_one(const std::vector<std::uint8_t>& bytes) {
  net::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  net::Frame frame;
  EXPECT_TRUE(decoder.next(frame));
  EXPECT_TRUE(decoder.at_frame_boundary());
  return frame;
}

tensor::Tensor sample_tensor(const tensor::Shape& shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return tensor::Tensor::rand_uniform(shape, rng, -1.0f, 1.0f);
}

TEST(NetProtocol, InferRoundTrip) {
  net::Frame frame;
  frame.type = net::FrameType::kInfer;
  frame.request_id = 0x1122334455667788ULL;
  frame.model = "tiny_vgg";
  frame.tensor = sample_tensor({3, 8, 8}, 7);

  const net::Frame out = decode_one(net::encode_frame(frame));
  EXPECT_EQ(out.type, net::FrameType::kInfer);
  EXPECT_EQ(out.request_id, frame.request_id);
  EXPECT_EQ(out.model, "tiny_vgg");
  ASSERT_EQ(out.tensor.shape(), frame.tensor.shape());
  EXPECT_EQ(std::memcmp(out.tensor.data(), frame.tensor.data(),
                        frame.tensor.numel() * sizeof(float)),
            0);
}

TEST(NetProtocol, ResultBusyErrorInfoRoundTrip) {
  {
    net::Frame frame;
    frame.type = net::FrameType::kResult;
    frame.request_id = 42;
    frame.tensor = sample_tensor({5}, 9);
    const net::Frame out = decode_one(net::encode_frame(frame));
    EXPECT_EQ(out.type, net::FrameType::kResult);
    ASSERT_EQ(out.tensor.shape(), tensor::Shape({5}));
    EXPECT_EQ(std::memcmp(out.tensor.data(), frame.tensor.data(), 5 * sizeof(float)),
              0);
  }
  {
    net::Frame frame;
    frame.type = net::FrameType::kBusy;
    frame.request_id = 43;
    frame.message = "queue is full";
    const net::Frame out = decode_one(net::encode_frame(frame));
    EXPECT_EQ(out.type, net::FrameType::kBusy);
    EXPECT_EQ(out.message, "queue is full");
  }
  {
    net::Frame frame;
    frame.type = net::FrameType::kError;
    frame.request_id = 44;
    frame.message = "unknown model 'x'";
    const net::Frame out = decode_one(net::encode_frame(frame));
    EXPECT_EQ(out.type, net::FrameType::kError);
    EXPECT_EQ(out.message, "unknown model 'x'");
  }
  {
    net::Frame frame;
    frame.type = net::FrameType::kInfo;
    frame.request_id = 45;
    frame.model = "m";
    EXPECT_EQ(decode_one(net::encode_frame(frame)).model, "m");
  }
  {
    net::Frame frame;
    frame.type = net::FrameType::kInfoReply;
    frame.request_id = 46;
    frame.sample_shape = {3, 8, 8};
    frame.num_classes = 4;
    frame.model_version = 3;
    const net::Frame out = decode_one(net::encode_frame(frame));
    EXPECT_EQ(out.sample_shape, tensor::Shape({3, 8, 8}));
    EXPECT_EQ(out.num_classes, 4);
    EXPECT_EQ(out.model_version, 3);
  }
}

TEST(NetProtocol, DecodesByteByByte) {
  net::Frame frame;
  frame.type = net::FrameType::kInfer;
  frame.request_id = 77;
  frame.model = "m";
  frame.tensor = sample_tensor({12}, 3);
  const std::vector<std::uint8_t> bytes = net::encode_frame(frame);

  net::FrameDecoder decoder;
  net::Frame out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    EXPECT_FALSE(decoder.next(out)) << "frame complete after " << i + 1 << " bytes";
  }
  decoder.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_TRUE(decoder.next(out));
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_TRUE(decoder.at_frame_boundary());
}

TEST(NetProtocol, DecodesTwoFramesFromOneFeed) {
  net::Frame a;
  a.type = net::FrameType::kInfo;
  a.request_id = 1;
  a.model = "first";
  net::Frame b;
  b.type = net::FrameType::kBusy;
  b.request_id = 2;
  b.message = "second";
  std::vector<std::uint8_t> bytes = net::encode_frame(a);
  const std::vector<std::uint8_t> second = net::encode_frame(b);
  bytes.insert(bytes.end(), second.begin(), second.end());

  net::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  net::Frame out;
  ASSERT_TRUE(decoder.next(out));
  EXPECT_EQ(out.model, "first");
  ASSERT_TRUE(decoder.next(out));
  EXPECT_EQ(out.message, "second");
  EXPECT_FALSE(decoder.next(out));
}

std::vector<std::uint8_t> valid_infer_bytes() {
  net::Frame frame;
  frame.type = net::FrameType::kInfer;
  frame.request_id = 5;
  frame.model = "m";
  frame.tensor = sample_tensor({4}, 1);
  return net::encode_frame(frame);
}

void expect_poisoned(std::vector<std::uint8_t> bytes) {
  net::FrameDecoder decoder;
  net::Frame out;
  bool threw = false;
  try {
    decoder.feed(bytes.data(), bytes.size());
    while (decoder.next(out)) {
    }
  } catch (const net::ProtocolError&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "malformed frame decoded cleanly";
  EXPECT_TRUE(decoder.failed());
  // Poisoned decoders keep refusing — feeding more does not resync.
  EXPECT_THROW(decoder.next(out), net::ProtocolError);
}

TEST(NetProtocol, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = valid_infer_bytes();
  bytes[4] ^= 0xFF;  // first magic byte
  expect_poisoned(std::move(bytes));
}

TEST(NetProtocol, RejectsBadVersion) {
  std::vector<std::uint8_t> bytes = valid_infer_bytes();
  bytes[8] = 0x7F;
  expect_poisoned(std::move(bytes));
}

TEST(NetProtocol, RejectsUnknownType) {
  std::vector<std::uint8_t> bytes = valid_infer_bytes();
  bytes[10] = 0x99;
  expect_poisoned(std::move(bytes));
}

TEST(NetProtocol, RejectsOversizedLength) {
  std::vector<std::uint8_t> bytes = valid_infer_bytes();
  // Length word claims 1 GiB: must be rejected from the prefix alone,
  // before any attempt to buffer that much.
  const std::uint32_t huge = 1u << 30;
  std::memcpy(bytes.data(), &huge, sizeof(huge));
  expect_poisoned(std::move(bytes));
}

TEST(NetProtocol, RejectsLengthTooSmallForHeader) {
  std::vector<std::uint8_t> bytes = valid_infer_bytes();
  const std::uint32_t tiny = 4;
  std::memcpy(bytes.data(), &tiny, sizeof(tiny));
  expect_poisoned(std::move(bytes));
}

TEST(NetProtocol, RejectsPayloadShapeMismatch) {
  std::vector<std::uint8_t> bytes = valid_infer_bytes();
  // Chop the last float: declared dims no longer match the payload.
  bytes.resize(bytes.size() - sizeof(float));
  const std::uint32_t shorter = static_cast<std::uint32_t>(bytes.size() - 4);
  std::memcpy(bytes.data(), &shorter, sizeof(shorter));
  expect_poisoned(std::move(bytes));
}

TEST(NetProtocol, TruncatedFrameStaysPending) {
  const std::vector<std::uint8_t> bytes = valid_infer_bytes();
  net::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 3);
  net::Frame out;
  EXPECT_FALSE(decoder.next(out));
  EXPECT_FALSE(decoder.failed());  // incomplete, not malformed
  EXPECT_GT(decoder.pending_bytes(), 0u);
  EXPECT_FALSE(decoder.at_frame_boundary());
}

TEST(NetProtocol, EncodeRejectsUnrepresentableFrames) {
  net::Frame frame;
  frame.type = net::FrameType::kInfer;
  frame.model = std::string(net::kMaxModelName + 1, 'x');
  frame.tensor = sample_tensor({4}, 2);
  EXPECT_THROW(net::encode_frame(frame), net::ProtocolError);

  net::Frame rank0;
  rank0.type = net::FrameType::kResult;
  EXPECT_THROW(net::encode_frame(rank0), net::ProtocolError);
}

// Deterministic fuzz: random mutations of valid frames and raw random
// garbage must always either decode or throw ProtocolError — never
// crash, never hang, never accept a frame that violates the limits.
TEST(NetProtocol, FuzzedStreamsNeverCrash) {
  util::Rng rng(0xF00D);
  const std::vector<std::uint8_t> valid = valid_infer_bytes();
  int rejected = 0;
  int decoded = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> bytes;
    if (round % 3 == 0) {  // pure garbage
      bytes.resize(static_cast<std::size_t>(rng.uniform_int(1, 200)));
      for (std::uint8_t& b : bytes) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
    } else {  // mutated valid frame
      bytes = valid;
      const int flips = static_cast<int>(rng.uniform_int(1, 8));
      for (int i = 0; i < flips; ++i) {
        const auto pos =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
        bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      if (rng.uniform() < 0.3) {
        bytes.resize(static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(bytes.size()))));
      }
    }
    net::FrameDecoder decoder;
    net::Frame out;
    try {
      // Feed in random chunk sizes to fuzz the incremental path too.
      std::size_t offset = 0;
      while (offset < bytes.size()) {
        const auto chunk = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(bytes.size() - offset)));
        decoder.feed(bytes.data() + offset, chunk);
        offset += chunk;
        while (decoder.next(out)) ++decoded;
      }
    } catch (const net::ProtocolError&) {
      ++rejected;
    }
  }
  // The exact split depends on which bytes mutate, but both outcomes
  // must occur: header mutations reject, float-payload mutations decode.
  EXPECT_GT(rejected, 100);
  EXPECT_GT(decoded, 100);
}

// ---------------------------------------------------------------- //
// Front end over a live registry.                                  //
// ---------------------------------------------------------------- //

struct ZooCase {
  const char* name;
  deploy::QuantizedArtifact (*make)();
};

const ZooCase kZoo[] = {
    {"tiny_vgg", serve::tiny_vgg_artifact},
    {"tiny_mlp", serve::tiny_mlp_artifact},
    {"tiny_resnet", serve::tiny_resnet_artifact},
};

class FrontEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const ZooCase& z : kZoo) {
      artifacts_.push_back(z.make());
      serve::ModelConfig config;
      config.server.workers = 2;
      registry_.load(z.name, artifacts_.back(), config);
    }
    net::FrontEndConfig config;
    config.port = 0;
    front_ = std::make_unique<net::FrontEnd>(registry_, config);
  }

  serve::ModelRegistry registry_;
  std::vector<deploy::QuantizedArtifact> artifacts_;
  std::unique_ptr<net::FrontEnd> front_;
};

TEST_F(FrontEndTest, RoundTripsByteIdenticalToEngineSession) {
  for (std::size_t m = 0; m < std::size(kZoo); ++m) {
    net::Client client("localhost", front_->port());
    const net::Client::ModelInfo info = client.info(kZoo[m].name);
    serve::EngineSession session(artifacts_[m]);
    ASSERT_EQ(info.sample_shape, session.sample_shape());
    ASSERT_EQ(info.num_classes, session.num_classes());
    EXPECT_EQ(info.version, 1);

    for (int i = 0; i < 4; ++i) {
      const tensor::Tensor sample =
          sample_tensor(info.sample_shape, 100 + 10 * m + static_cast<std::uint64_t>(i));
      const net::Client::InferResult remote = client.infer(kZoo[m].name, sample);
      ASSERT_TRUE(remote.admitted) << remote.reason;

      tensor::Shape batch_shape;
      batch_shape.push_back(1);
      batch_shape.insert(batch_shape.end(), info.sample_shape.begin(),
                         info.sample_shape.end());
      tensor::Tensor batch(batch_shape);
      std::memcpy(batch.data(), sample.data(), sample.numel() * sizeof(float));
      const tensor::Tensor local = session.run(batch);

      ASSERT_EQ(remote.logits.shape(), tensor::Shape({info.num_classes}));
      EXPECT_EQ(std::memcmp(remote.logits.data(), local.data(),
                            static_cast<std::size_t>(info.num_classes) * sizeof(float)),
                0)
          << kZoo[m].name << " sample " << i
          << ": remote logits differ from in-process EngineSession";
    }
  }
}

TEST_F(FrontEndTest, UnknownModelAnswersError) {
  net::Client client("localhost", front_->port());
  EXPECT_THROW(client.infer("no_such_model", sample_tensor({3, 8, 8}, 1)),
               net::RemoteError);
  // The connection survives a kError reply (it was not a framing
  // problem); the next request on the same connection still works.
  const net::Client::InferResult ok =
      client.infer("tiny_mlp", sample_tensor({12}, 2));
  EXPECT_TRUE(ok.admitted);
}

TEST_F(FrontEndTest, MidStreamDisconnectLeavesServerServing) {
  {
    // Send two thirds of a valid frame, then vanish.
    net::Socket raw = net::tcp_connect("localhost", front_->port());
    net::Frame frame;
    frame.type = net::FrameType::kInfer;
    frame.request_id = 9;
    frame.model = "tiny_mlp";
    frame.tensor = sample_tensor({12}, 3);
    const std::vector<std::uint8_t> bytes = net::encode_frame(frame);
    raw.send_all(bytes.data(), bytes.size() * 2 / 3);
  }  // destructor closes mid-frame
  // The abandoned connection must not wedge or poison the front end.
  net::Client client("localhost", front_->port());
  const net::Client::InferResult ok = client.infer("tiny_mlp", sample_tensor({12}, 4));
  EXPECT_TRUE(ok.admitted);
}

TEST_F(FrontEndTest, GarbageStreamAnswersErrorAndCloses) {
  net::Socket raw = net::tcp_connect("localhost", front_->port());
  std::uint8_t garbage[64];
  util::Rng rng(99);
  for (std::uint8_t& b : garbage) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  garbage[0] = 0x10;  // plausible little-endian length, bad magic after
  garbage[1] = 0x00;
  garbage[2] = 0x00;
  garbage[3] = 0x00;
  raw.send_all(garbage, sizeof(garbage));

  // Exactly one kError reply, then EOF: the stream cannot be resynced.
  net::FrameDecoder decoder;
  net::Frame reply;
  ASSERT_TRUE(net::recv_frame(raw, decoder, reply));
  EXPECT_EQ(reply.type, net::FrameType::kError);
  EXPECT_FALSE(net::recv_frame(raw, decoder, reply));  // server closed
  EXPECT_GE(front_->stats().protocol_errors, 1u);

  // And the front end keeps serving everyone else.
  net::Client client("localhost", front_->port());
  EXPECT_TRUE(client.infer("tiny_mlp", sample_tensor({12}, 5)).admitted);
}

TEST_F(FrontEndTest, ReplyDirectionFrameFromClientIsRejected) {
  net::Socket raw = net::tcp_connect("localhost", front_->port());
  net::Frame frame;
  frame.type = net::FrameType::kResult;  // a client must never send this
  frame.request_id = 1;
  frame.tensor = sample_tensor({4}, 6);
  const std::vector<std::uint8_t> bytes = net::encode_frame(frame);
  raw.send_all(bytes.data(), bytes.size());

  net::FrameDecoder decoder;
  net::Frame reply;
  ASSERT_TRUE(net::recv_frame(raw, decoder, reply));
  EXPECT_EQ(reply.type, net::FrameType::kError);
  EXPECT_FALSE(net::recv_frame(raw, decoder, reply));  // connection closed
}

// Pipelined overload against a deliberately tiny admission window must
// answer explicit kBusy for the overflow — never block the loop, never
// silently drop — while the admitted requests still complete correctly.
TEST(FrontEndOverload, PipelinedBurstShedsExplicitly) {
  serve::ModelRegistry registry;
  const deploy::QuantizedArtifact artifact = serve::tiny_mlp_artifact();
  serve::ModelConfig config;
  config.server.workers = 1;
  config.server.max_batch = 64;
  config.server.max_wait_us = 50000;  // hold the batch window open
  config.server.queue_capacity = 2;
  config.admit_queue_depth = 2;
  registry.load("m", artifact, config);
  net::FrontEndConfig net_config;
  net_config.port = 0;
  net::FrontEnd front(registry, net_config);

  net::Socket raw = net::tcp_connect("localhost", front.port());
  constexpr int kBurst = 16;
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < kBurst; ++i) {
    net::Frame frame;
    frame.type = net::FrameType::kInfer;
    frame.request_id = static_cast<std::uint64_t>(i) + 1;
    frame.model = "m";
    frame.tensor = sample_tensor({12}, static_cast<std::uint64_t>(i));
    const std::vector<std::uint8_t> bytes = net::encode_frame(frame);
    wire.insert(wire.end(), bytes.begin(), bytes.end());
  }
  raw.send_all(wire.data(), wire.size());

  int results = 0;
  int busy = 0;
  net::FrameDecoder decoder;
  for (int i = 0; i < kBurst; ++i) {
    net::Frame reply;
    ASSERT_TRUE(net::recv_frame(raw, decoder, reply)) << "reply " << i;
    if (reply.type == net::FrameType::kResult) {
      ++results;
    } else {
      ASSERT_EQ(reply.type, net::FrameType::kBusy);
      EXPECT_FALSE(reply.message.empty());
      ++busy;
    }
  }
  EXPECT_EQ(results + busy, kBurst);
  EXPECT_GT(results, 0);
  EXPECT_GT(busy, 0) << "a 16-deep burst into a 2-deep window must shed";
  EXPECT_EQ(front.stats().replies_busy, static_cast<std::size_t>(busy));
  EXPECT_GE(registry.info("m").requests_shed, static_cast<std::uint64_t>(busy));
  front.stop();
  const serve::ServerStats stats = registry.stats("m");
  EXPECT_EQ(stats.failed, 0u);
}

TEST(FrontEndLifecycle, StopDrainsInFlightRequests) {
  serve::ModelRegistry registry;
  const deploy::QuantizedArtifact artifact = serve::tiny_vgg_artifact();
  serve::ModelConfig config;
  config.server.workers = 1;
  config.server.max_wait_us = 20000;  // requests are in flight at stop()
  registry.load("m", artifact, config);
  net::FrontEndConfig net_config;
  net_config.port = 0;
  auto front = std::make_unique<net::FrontEnd>(registry, net_config);

  net::Socket raw = net::tcp_connect("localhost", front->port());
  std::vector<std::uint8_t> wire;
  constexpr int kInFlight = 4;
  for (int i = 0; i < kInFlight; ++i) {
    net::Frame frame;
    frame.type = net::FrameType::kInfer;
    frame.request_id = static_cast<std::uint64_t>(i) + 1;
    frame.model = "m";
    frame.tensor = sample_tensor({3, 8, 8}, static_cast<std::uint64_t>(i));
    const std::vector<std::uint8_t> bytes = net::encode_frame(frame);
    wire.insert(wire.end(), bytes.begin(), bytes.end());
  }
  raw.send_all(wire.data(), wire.size());

  // Give the loop a moment to admit, then drain while they are queued
  // inside the 20 ms batch window.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  front->stop();

  // Every admitted request's reply must have been flushed before stop
  // returned; a shutdown must never strand an admitted request.
  net::FrameDecoder decoder;
  int answered = 0;
  net::Frame reply;
  while (net::recv_frame(raw, decoder, reply)) {
    EXPECT_TRUE(reply.type == net::FrameType::kResult ||
                reply.type == net::FrameType::kBusy);
    ++answered;
  }
  EXPECT_EQ(answered, kInFlight);
}

}  // namespace
}  // namespace cq
