#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "deploy/artifact.h"
#include "hw/cost_model.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"

namespace cq::deploy {
namespace {

using tensor::Tensor;

/// Small but real end-to-end fixture: synthetic 4-class data, a tiny
/// VGG, a short FP training run and one CQ pipeline pass. Shared by
/// all tests in this file (built once — training dominates the cost).
class DeployEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticVisionConfig data_cfg;
    data_cfg.num_classes = 4;
    data_cfg.image_size = 8;
    data_cfg.train_per_class = 40;
    data_cfg.val_per_class = 10;
    data_cfg.test_per_class = 10;
    split_ = new data::DataSplit(data::make_synthetic_vision(data_cfg));

    nn::VggSmallConfig model_cfg;
    model_cfg.image_size = 8;
    model_cfg.num_classes = 4;
    model_cfg.c1 = 4;
    model_cfg.c2 = 6;
    model_cfg.c3 = 8;
    model_cfg.f1 = 24;
    model_cfg.f2 = 16;
    model_cfg.f3 = 12;
    model_ = new nn::VggSmall(model_cfg);

    nn::TrainConfig train_cfg;
    train_cfg.epochs = 3;
    train_cfg.batch_size = 20;
    train_cfg.lr = 0.02;
    nn::Trainer(train_cfg).fit(*model_, split_->train.images, split_->train.labels);

    core::CqConfig cq_cfg;
    cq_cfg.search.desired_avg_bits = 2.0;
    cq_cfg.search.eval_samples = 40;
    cq_cfg.refine.epochs = 1;
    cq_cfg.activation_bits = 2;
    cq_cfg.importance.samples_per_class = 5;
    report_ = new core::CqReport(core::CqPipeline(cq_cfg).run(*model_, *split_));
  }

  static void TearDownTestSuite() {
    delete report_;
    delete model_;
    delete split_;
    report_ = nullptr;
    model_ = nullptr;
    split_ = nullptr;
  }

  static data::DataSplit* split_;
  static nn::VggSmall* model_;
  static core::CqReport* report_;
};

data::DataSplit* DeployEndToEnd::split_ = nullptr;
nn::VggSmall* DeployEndToEnd::model_ = nullptr;
core::CqReport* DeployEndToEnd::report_ = nullptr;

TEST_F(DeployEndToEnd, PipelineHitsTheBitBudget) {
  EXPECT_LE(report_->achieved_avg_bits, 2.0 + 1e-9);
  EXPECT_GT(report_->achieved_avg_bits, 0.0);
}

TEST_F(DeployEndToEnd, ArtifactMatchesTrainingSideAccuracyExactly) {
  const QuantizedArtifact artifact = export_model(*model_);
  auto device = instantiate(artifact);
  const double train_side =
      nn::Trainer::evaluate(*model_, split_->test.images, split_->test.labels);
  const double device_side =
      nn::Trainer::evaluate(*device, split_->test.images, split_->test.labels);
  EXPECT_EQ(train_side, device_side);
}

TEST_F(DeployEndToEnd, SaveLoadPreservesEverything) {
  const std::string path = ::testing::TempDir() + "cq_e2e.cqar";
  save_artifact(path, export_model(*model_));
  const QuantizedArtifact loaded = load_artifact(path);
  auto device = instantiate(loaded);
  EXPECT_EQ(nn::Trainer::evaluate(*model_, split_->test.images, split_->test.labels),
            nn::Trainer::evaluate(*device, split_->test.images, split_->test.labels));
  std::remove(path.c_str());
}

TEST_F(DeployEndToEnd, ReexportIsByteIdentical) {
  // Deployment must be a fixed point: exporting the instantiated model
  // again yields the same packed payloads and ranges.
  const QuantizedArtifact first = export_model(*model_);
  auto device = instantiate(first);
  const QuantizedArtifact second = export_model(*device);
  ASSERT_EQ(first.packed_layers.size(), second.packed_layers.size());
  for (std::size_t i = 0; i < first.packed_layers.size(); ++i) {
    const PackedLayer& a = first.packed_layers[i];
    const PackedLayer& b = second.packed_layers[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.range_hi, b.range_hi) << a.name;
    EXPECT_EQ(a.filter_bits, b.filter_bits) << a.name;
    EXPECT_EQ(a.codes, b.codes) << a.name;
  }
}

TEST_F(DeployEndToEnd, ArtifactBitsMatchSearchArrangement) {
  const QuantizedArtifact artifact = export_model(*model_);
  std::size_t i = 0;
  for (const auto& layer : report_->arrangement.layers()) {
    ASSERT_LT(i, artifact.packed_layers.size());
    const PackedLayer& packed = artifact.packed_layers[i];
    ASSERT_EQ(packed.filter_bits.size(), layer.filter_bits.size()) << layer.layer_name;
    for (std::size_t k = 0; k < layer.filter_bits.size(); ++k) {
      EXPECT_EQ(static_cast<int>(packed.filter_bits[k]), layer.filter_bits[k]);
    }
    ++i;
  }
  EXPECT_EQ(i, artifact.packed_layers.size());
}

TEST_F(DeployEndToEnd, HwTraceSeesTheQuantizedArrangement) {
  Tensor sample({1, 3, 8, 8});
  for (std::size_t i = 0; i < sample.numel(); ++i) sample[i] = split_->test.images[i];
  const auto workloads = hw::trace_workloads(*model_, sample, 2);

  // Average bits over the traced workloads equals the search result.
  double bit_weight_sum = 0.0;
  double weights = 0.0;
  for (const hw::LayerWorkload& w : workloads) {
    for (const int b : w.filter_bits) {
      bit_weight_sum += static_cast<double>(b) * static_cast<double>(w.weights_per_filter);
      weights += static_cast<double>(w.weights_per_filter);
    }
  }
  EXPECT_NEAR(bit_weight_sum / weights, report_->achieved_avg_bits, 1e-9);
}

TEST_F(DeployEndToEnd, CompressionBeatsEightToOne) {
  // 2.0 average bits over fp32 weights: the packed payload alone must
  // be ~16x smaller; the artifact (with fp32 residue) at least 4x.
  const SizeReport size = size_report(export_model(*model_));
  EXPECT_LT(static_cast<double>(size.packed_code_bytes),
            static_cast<double>(size.fp32_weight_bytes) / 8.0);
  EXPECT_GT(size.compression_ratio(), 4.0);
}

TEST(DeployPathology, PrunedMaxWeightStillRoundTripsExactly) {
  // The pathology the range override exists for: the layer's largest
  // weight lives in a *pruned* filter, so max|w| of the decoded
  // weights shrinks; without the frozen range the re-quantization grid
  // would shift and outputs would drift.
  util::Rng rng(21);
  nn::Linear original(6, 3, rng);
  // Force the global max into filter 0, then prune filter 0.
  for (float& w : original.mutable_filter_weights(0)) w = 0.9f;
  original.weight().value[0] = 2.5f;  // the layer max, in filter 0
  original.set_filter_bits({0, 3, 2});

  const PackedLayer packed = pack_layer(original, "fc");
  EXPECT_EQ(packed.range_hi, 2.5f);

  util::Rng rng2(22);
  nn::Linear restored(6, 3, rng2);
  unpack_layer(packed, restored);
  // Decoded master weights no longer contain 2.5, but the frozen range does.
  EXPECT_LT(restored.weight().value.abs_max(), 2.5f);
  EXPECT_EQ(restored.weight_range_override(), 2.5f);

  const tensor::Tensor input = tensor::Tensor::randn({4, 6}, rng2);
  tensor::Tensor out_a = original.forward(input);
  tensor::Tensor out_b = restored.forward(input);
  for (std::size_t i = 0; i < out_a.numel(); ++i) ASSERT_EQ(out_a[i], out_b[i]);
}

}  // namespace
}  // namespace cq::deploy
