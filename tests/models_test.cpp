#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"

namespace cq::nn {
namespace {

TEST(Mlp, OutputShapeAndScoredLayers) {
  Mlp mlp({8, {16, 12, 10}, 5, 1});
  util::Rng rng(1);
  const Tensor y = mlp.forward(Tensor::randn({3, 8}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{3, 5}));
  // First hidden layer excluded -> 2 scored layers.
  const auto scored = mlp.scored_layers();
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].layers.front()->num_filters(), 12);
  EXPECT_EQ(scored[1].layers.front()->num_filters(), 10);
  EXPECT_FALSE(scored[0].is_conv);
}

TEST(Mlp, GradCheckWholeNetwork) {
  Mlp mlp({6, {8, 8}, 3, 2});
  util::Rng rng(2);
  const auto r = testutil::gradcheck(mlp, Tensor::randn({2, 6}, rng));
  EXPECT_LT(r.max_input_error, 1e-2);
  EXPECT_LT(r.max_param_error, 1e-2);
}

TEST(Mlp, CloneProducesIdenticalOutputs) {
  Mlp mlp({8, {16, 16}, 4, 3});
  util::Rng rng(3);
  const Tensor x = Tensor::randn({5, 8}, rng);
  auto copy = mlp.clone();
  mlp.set_training(false);
  copy->set_training(false);
  EXPECT_TRUE(mlp.forward(x).allclose(copy->forward(x)));
}

TEST(Mlp, CloneIsIndependent) {
  Mlp mlp({4, {8, 8}, 2, 4});
  auto copy = mlp.clone();
  mlp.parameters()[0]->value.fill(7.0f);
  EXPECT_NE(copy->parameters()[0]->value[0], 7.0f);
}

TEST(VggSmall, OutputShape) {
  VggSmallConfig cfg;
  cfg.image_size = 16;
  cfg.c1 = 4;
  cfg.c2 = 8;
  cfg.c3 = 8;
  cfg.f1 = 16;
  cfg.f2 = 12;
  cfg.f3 = 8;
  cfg.num_classes = 10;
  VggSmall vgg(cfg);
  util::Rng rng(5);
  const Tensor y = vgg.forward(Tensor::randn({2, 3, 16, 16}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
}

TEST(VggSmall, HasSevenScoredLayers) {
  VggSmallConfig cfg;
  cfg.c1 = 4;
  cfg.c2 = 4;
  cfg.c3 = 4;
  cfg.f1 = 8;
  cfg.f2 = 8;
  cfg.f3 = 8;
  VggSmall vgg(cfg);
  // Layers 1-7 of the paper's Figures 2/6.
  const auto scored = vgg.scored_layers();
  ASSERT_EQ(scored.size(), 7u);
  EXPECT_TRUE(scored[0].is_conv);
  EXPECT_TRUE(scored[3].is_conv);
  EXPECT_FALSE(scored[4].is_conv);  // fc5
  EXPECT_FALSE(scored[6].is_conv);  // fc7
  for (const auto& s : scored) {
    EXPECT_NE(s.probe, nullptr);
    EXPECT_FALSE(s.layers.empty());
  }
}

TEST(VggSmall, RejectsBadImageSize) {
  VggSmallConfig cfg;
  cfg.image_size = 15;
  EXPECT_THROW(VggSmall{cfg}, std::invalid_argument);
}

TEST(VggSmall, CloneMatchesIncludingBatchNormState) {
  VggSmallConfig cfg;
  cfg.c1 = 4;
  cfg.c2 = 4;
  cfg.c3 = 4;
  cfg.f1 = 8;
  cfg.f2 = 8;
  cfg.f3 = 8;
  VggSmall vgg(cfg);
  util::Rng rng(6);
  // Update BN running stats with a few training forwards first.
  vgg.set_training(true);
  for (int i = 0; i < 3; ++i) vgg.forward(Tensor::randn({4, 3, 16, 16}, rng));
  auto copy = vgg.clone();
  vgg.set_training(false);
  copy->set_training(false);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_TRUE(vgg.forward(x).allclose(copy->forward(x), 1e-5f));
}

TEST(VggSmall, ActivationQuantizersCoverAllBlocks) {
  VggSmallConfig cfg;
  cfg.c1 = 4;
  cfg.c2 = 4;
  cfg.c3 = 4;
  cfg.f1 = 8;
  cfg.f2 = 8;
  cfg.f3 = 8;
  VggSmall vgg(cfg);
  // 5 conv blocks + 3 FC blocks.
  EXPECT_EQ(vgg.activation_quantizers().size(), 8u);
}

TEST(ResNet20, OutputShapeAndBlockCount) {
  ResNet20Config cfg;
  cfg.base_width = 2;
  cfg.expand = 1;
  ResNet20 net(cfg);
  util::Rng rng(7);
  const Tensor y = net.forward(Tensor::randn({2, 3, 16, 16}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
  // 9 blocks x 2 scored convs.
  EXPECT_EQ(net.scored_layers().size(), 18u);
}

TEST(ResNet20, DownsampleBlocksShareScores) {
  ResNet20Config cfg;
  cfg.base_width = 2;
  ResNet20 net(cfg);
  int shared = 0;
  for (const auto& s : net.scored_layers()) {
    if (s.layers.size() == 2) ++shared;
  }
  // Stage 2 and stage 3 first blocks have projection shortcuts.
  EXPECT_EQ(shared, 2);
}

TEST(ResNet20, ExpandScalesWidths) {
  ResNet20Config cfg;
  cfg.base_width = 2;
  cfg.expand = 5;
  ResNet20 net(cfg);
  const auto scored = net.scored_layers();
  EXPECT_EQ(scored.front().layers.front()->num_filters(), 10);   // 2*5
  EXPECT_EQ(scored.back().layers.front()->num_filters(), 40);    // 8*5
}

TEST(ResNet20, GradCheckTiny) {
  ResNet20Config cfg;
  cfg.base_width = 1;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  ResNet20 net(cfg);
  util::Rng rng(8);
  // A whole model has thousands of ReLU kinks, so finite differences
  // occasionally straddle one; check the robust 95th percentile.
  const auto r = testutil::gradcheck(net, Tensor::randn({2, 3, 8, 8}, rng), 1e-3);
  EXPECT_LT(r.p95_input_error, 1e-2);
  EXPECT_LT(r.p95_param_error, 1e-2);
}

TEST(ResNet20, CloneProducesIdenticalOutputs) {
  ResNet20Config cfg;
  cfg.base_width = 2;
  ResNet20 net(cfg);
  util::Rng rng(9);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) net.forward(Tensor::randn({4, 3, 16, 16}, rng));
  auto copy = net.clone();
  net.set_training(false);
  copy->set_training(false);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_TRUE(net.forward(x).allclose(copy->forward(x), 1e-5f));
}

TEST(Model, SetActivationBitsAppliesEverywhere) {
  Mlp mlp({4, {8, 8}, 2, 10});
  mlp.set_activation_bits(3);
  for (ActQuant* aq : mlp.activation_quantizers()) EXPECT_EQ(aq->bits(), 3);
}

TEST(Model, CalibrateActivationsSetsClipRanges) {
  Mlp mlp({4, {8, 8}, 2, 11});
  util::Rng rng(12);
  mlp.calibrate_activations(Tensor::randn({20, 4}, rng), 8);
  bool any_positive = false;
  for (ActQuant* aq : mlp.activation_quantizers()) {
    EXPECT_FALSE(aq->calibrating());
    if (aq->max_activation() > 0.0f) any_positive = true;
  }
  EXPECT_TRUE(any_positive);
}

TEST(Model, BitArrangementReportsQuantizedAndFpLayers) {
  Mlp mlp({4, {8, 6}, 2, 13});
  auto scored = mlp.scored_layers();
  ASSERT_EQ(scored.size(), 1u);
  scored[0].layers.front()->set_filter_bits(std::vector<int>(6, 2));
  const quant::BitArrangement arr = mlp.bit_arrangement();
  ASSERT_EQ(arr.layers().size(), 1u);
  EXPECT_EQ(arr.layers()[0].filter_bits, std::vector<int>(6, 2));
  EXPECT_DOUBLE_EQ(arr.average_bits(), 2.0);
}

TEST(Model, ClearWeightQuantizationRestoresFp) {
  Mlp mlp({4, {8, 6}, 2, 14});
  auto scored = mlp.scored_layers();
  scored[0].layers.front()->set_filter_bits(std::vector<int>(6, 1));
  mlp.clear_weight_quantization();
  EXPECT_TRUE(scored[0].layers.front()->filter_bits().empty());
}

TEST(CopyState, ThrowsOnStructureMismatch) {
  Mlp a({4, {8}, 2, 15});
  Mlp b({4, {9}, 2, 15});
  EXPECT_THROW(copy_state(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace cq::nn
