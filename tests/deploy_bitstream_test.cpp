#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "deploy/bitstream.h"
#include "util/rng.h"

namespace cq::deploy {
namespace {

TEST(BitWriter, EmptyStreamHasNoBytes) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitWriter, PacksLsbFirstWithinByte) {
  BitWriter w;
  w.append(0b1, 1);
  w.append(0b0, 1);
  w.append(0b11, 2);
  ASSERT_EQ(w.bytes().size(), 1u);
  // bit0=1, bit1=0, bits2-3=11 -> 0b00001101.
  EXPECT_EQ(w.bytes()[0], 0b00001101u);
}

TEST(BitWriter, ZeroBitAppendIsNoOp) {
  BitWriter w;
  w.append(0, 0);
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitWriter, RejectsOversizedCode) {
  BitWriter w;
  EXPECT_THROW(w.append(4, 2), std::invalid_argument);
  EXPECT_THROW(w.append(0, -1), std::invalid_argument);
  EXPECT_THROW(w.append(0, 33), std::invalid_argument);
}

TEST(BitWriter, AlignToBytePadsWithZeros) {
  BitWriter w;
  w.append(0b101, 3);
  w.align_to_byte();
  EXPECT_EQ(w.bit_count(), 8u);
  w.append(0xFF, 8);
  ASSERT_EQ(w.bytes().size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0b00000101u);
  EXPECT_EQ(w.bytes()[1], 0xFFu);
}

TEST(BitReader, ReadsBackWhatWasWritten) {
  BitWriter w;
  w.append(5, 3);
  w.append(0, 1);
  w.append(200, 8);
  w.append(70000, 20);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(3), 5u);
  EXPECT_EQ(r.read(1), 0u);
  EXPECT_EQ(r.read(8), 200u);
  EXPECT_EQ(r.read(20), 70000u);
}

TEST(BitReader, ZeroBitReadConsumesNothing) {
  BitWriter w;
  w.append(3, 2);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(0), 0u);
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.read(2), 3u);
}

TEST(BitReader, ThrowsPastEndOfStream) {
  BitWriter w;
  w.append(1, 4);
  BitReader r(w.bytes());
  r.read(4);
  // The partial byte's padding is readable; past the byte is not.
  EXPECT_EQ(r.read(4), 0u);
  EXPECT_THROW(r.read(1), std::out_of_range);
}

TEST(BitReader, AlignMirrorsWriter) {
  BitWriter w;
  w.append(0b11, 2);
  w.align_to_byte();
  w.append(0b1010101, 7);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(2), 0b11u);
  r.align_to_byte();
  EXPECT_EQ(r.read(7), 0b1010101u);
}

class BitstreamRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitstreamRoundTrip, RandomCodesSurviveAnyWidth) {
  const int bits = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * 7919 + 3);
  std::vector<std::uint32_t> codes(257);
  const std::uint32_t max_code =
      bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u);
  for (auto& c : codes) {
    c = static_cast<std::uint32_t>(rng.uniform_int(0, max_code));
  }

  BitWriter w;
  for (const auto c : codes) w.append(c, bits);
  EXPECT_EQ(w.bit_count(), codes.size() * static_cast<std::size_t>(bits));

  BitReader r(w.bytes());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(r.read(bits), codes[i]) << "index " << i << " bits " << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitstreamRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 31, 32));

TEST(BitstreamRoundTrip, MixedWidthSequence) {
  util::Rng rng(99);
  std::vector<std::pair<std::uint32_t, int>> entries;
  for (int i = 0; i < 500; ++i) {
    const int bits = static_cast<int>(rng.uniform_int(0, 12));
    const std::uint32_t max_code = bits == 0 ? 0u : ((1u << bits) - 1u);
    entries.emplace_back(static_cast<std::uint32_t>(rng.uniform_int(0, max_code)), bits);
  }
  BitWriter w;
  for (const auto& [code, bits] : entries) w.append(code, bits);
  BitReader r(w.bytes());
  for (const auto& [code, bits] : entries) {
    EXPECT_EQ(r.read(bits), code);
  }
}

}  // namespace
}  // namespace cq::deploy
