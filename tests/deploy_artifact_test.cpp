#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "deploy/artifact.h"
#include "nn/models/mlp.h"
#include "nn/models/resnet20.h"
#include "nn/models/vgg_small.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace cq::deploy {
namespace {

using tensor::Tensor;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "cq_artifact_" + name;
}

/// Assigns a repeating 4,3,2,1,0 bit pattern to every scored layer and
/// calibrates + enables 3-bit activation quantization — a stand-in for
/// a finished CQ run that exercises every bit bucket.
void quantize_for_test(nn::Model& model, const Tensor& calib) {
  model.calibrate_activations(calib, calib.dim(0));
  model.set_activation_bits(3);
  const int pattern[] = {4, 3, 2, 1, 0};
  for (const nn::ScoredLayerRef& ref : model.scored_layers()) {
    for (quant::QuantizableLayer* layer : ref.layers) {
      std::vector<int> bits(static_cast<std::size_t>(layer->num_filters()));
      for (std::size_t k = 0; k < bits.size(); ++k) bits[k] = pattern[k % 5];
      layer->set_filter_bits(std::move(bits));
    }
  }
}

void expect_identical_outputs(nn::Model& a, nn::Model& b, const Tensor& input) {
  a.set_training(false);
  b.set_training(false);
  const Tensor out_a = a.forward(input);
  const Tensor out_b = b.forward(input);
  ASSERT_EQ(out_a.shape(), out_b.shape());
  for (std::size_t i = 0; i < out_a.numel(); ++i) {
    ASSERT_EQ(out_a[i], out_b[i]) << "logit " << i;
  }
}

TEST(ArchDescriptor, MissingParameterThrows) {
  ArchDescriptor arch;
  arch.kind = "VggSmall";
  EXPECT_THROW(instantiate_model(arch), ArtifactError);
}

TEST(ArchDescriptor, MissingParameterNamesKindAndAvailableKeys) {
  ArchDescriptor arch;
  arch.kind = "VggSmall";
  arch.params = {{"image_size", 16.0}, {"num_classes", 10.0}};
  try {
    arch.int_param("c1");
    FAIL() << "expected ArtifactError";
  } catch (const ArtifactError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("VggSmall"), std::string::npos) << what;
    EXPECT_NE(what.find("'c1'"), std::string::npos) << what;
    EXPECT_NE(what.find("image_size"), std::string::npos) << what;
    EXPECT_NE(what.find("num_classes"), std::string::npos) << what;
  }
}

TEST(ArchDescriptor, MissingParameterOnEmptyDescriptorSaysNone) {
  ArchDescriptor arch;
  arch.kind = "Mlp";
  try {
    arch.param("in_features");
    FAIL() << "expected ArtifactError";
  } catch (const ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("<none>"), std::string::npos) << e.what();
  }
}

TEST(ArchDescriptor, UnknownKindThrows) {
  ArchDescriptor arch;
  arch.kind = "Transformer";
  EXPECT_THROW(instantiate_model(arch), ArtifactError);
}

TEST(ArchDescriptor, MlpHiddenLayersRoundTrip) {
  nn::MlpConfig config;
  config.in_features = 8;
  config.hidden = {24, 17, 9};
  config.num_classes = 5;
  config.seed = 42;
  nn::Mlp mlp(config);
  const ArchDescriptor arch = describe_model(mlp);
  EXPECT_EQ(arch.kind, "Mlp");
  auto rebuilt = instantiate_model(arch);
  auto* typed = dynamic_cast<nn::Mlp*>(rebuilt.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->config().hidden, config.hidden);
  EXPECT_EQ(typed->config().in_features, config.in_features);
  EXPECT_EQ(typed->config().num_classes, config.num_classes);
}

TEST(ArchDescriptor, ResNetConfigRoundTrips) {
  nn::ResNet20Config config;
  config.base_width = 3;
  config.expand = 2;
  config.num_classes = 7;
  config.image_size = 8;
  nn::ResNet20 model(config);
  auto rebuilt = instantiate_model(describe_model(model));
  auto* typed = dynamic_cast<nn::ResNet20*>(rebuilt.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->config().base_width, 3);
  EXPECT_EQ(typed->config().expand, 2);
  EXPECT_EQ(typed->config().num_classes, 7);
}

TEST(ExportModel, RequiresQuantizedLayers) {
  nn::MlpConfig config;
  config.in_features = 6;
  config.hidden = {10, 10};
  nn::Mlp mlp(config);
  EXPECT_THROW(export_model(mlp), std::invalid_argument);
}

TEST(ExportModel, MlpArtifactReproducesOutputsExactly) {
  nn::MlpConfig config;
  config.in_features = 12;
  config.hidden = {20, 16};
  config.num_classes = 4;
  nn::Mlp mlp(config);
  util::Rng rng(5);
  const Tensor calib = Tensor::randn({16, 12}, rng);
  quantize_for_test(mlp, calib);

  const QuantizedArtifact artifact = export_model(mlp);
  auto restored = instantiate(artifact);

  const Tensor input = Tensor::randn({8, 12}, rng);
  expect_identical_outputs(mlp, *restored, input);
}

TEST(ExportModel, VggArtifactReproducesOutputsExactly) {
  nn::VggSmallConfig config;
  config.image_size = 8;
  config.c1 = 4;
  config.c2 = 6;
  config.c3 = 8;
  config.f1 = 20;
  config.f2 = 14;
  config.f3 = 10;
  nn::VggSmall vgg(config);
  util::Rng rng(6);
  // A few training-mode forwards give batch-norm nontrivial running stats.
  vgg.set_training(true);
  for (int i = 0; i < 3; ++i) {
    (void)vgg.forward(Tensor::randn({4, 3, 8, 8}, rng));
  }
  const Tensor calib = Tensor::randn({8, 3, 8, 8}, rng);
  quantize_for_test(vgg, calib);

  const QuantizedArtifact artifact = export_model(vgg);
  auto restored = instantiate(artifact);

  const Tensor input = Tensor::randn({5, 3, 8, 8}, rng);
  expect_identical_outputs(vgg, *restored, input);
}

TEST(ExportModel, ResNetArtifactReproducesOutputsExactly) {
  nn::ResNet20Config config;
  config.image_size = 8;
  config.base_width = 2;
  config.expand = 1;
  nn::ResNet20 model(config);
  util::Rng rng(7);
  model.set_training(true);
  for (int i = 0; i < 3; ++i) {
    (void)model.forward(Tensor::randn({4, 3, 8, 8}, rng));
  }
  const Tensor calib = Tensor::randn({8, 3, 8, 8}, rng);
  quantize_for_test(model, calib);

  const QuantizedArtifact artifact = export_model(model);
  auto restored = instantiate(artifact);

  const Tensor input = Tensor::randn({5, 3, 8, 8}, rng);
  expect_identical_outputs(model, *restored, input);
}

TEST(ExportModel, DenseStateExcludesPackedWeights) {
  nn::MlpConfig config;
  config.in_features = 10;
  config.hidden = {12, 12};
  nn::Mlp mlp(config);
  util::Rng rng(8);
  quantize_for_test(mlp, Tensor::randn({4, 10}, rng));
  const QuantizedArtifact artifact = export_model(mlp);

  // Mlp parameters: (W,b) per Linear. Layers: first, hidden2, output —
  // of which only the middle hidden layer is scored/packed.
  EXPECT_EQ(artifact.packed_layers.size(), 1u);
  std::size_t dense_weights = 0;
  for (const auto& [key, t] : artifact.dense) dense_weights += t.numel();
  std::size_t all_weights = 0;
  for (nn::Parameter* p : mlp.parameters()) all_weights += p->value.numel();
  const std::size_t packed_weights = static_cast<std::size_t>(
      artifact.packed_layers[0].num_filters * artifact.packed_layers[0].weights_per_filter);
  EXPECT_EQ(dense_weights + packed_weights, all_weights);
}

TEST(Artifact, SaveLoadRoundTripPreservesOutputs) {
  nn::MlpConfig config;
  config.in_features = 9;
  config.hidden = {14, 11};
  config.num_classes = 3;
  nn::Mlp mlp(config);
  util::Rng rng(9);
  quantize_for_test(mlp, Tensor::randn({8, 9}, rng));

  const std::string path = temp_path("roundtrip.cqar");
  save_artifact(path, export_model(mlp));
  const QuantizedArtifact loaded = load_artifact(path);
  auto restored = instantiate(loaded);

  const Tensor input = Tensor::randn({6, 9}, rng);
  expect_identical_outputs(mlp, *restored, input);
  std::remove(path.c_str());
}

TEST(Artifact, LoadRejectsMissingFile) {
  EXPECT_THROW(load_artifact(temp_path("does_not_exist.cqar")), ArtifactError);
}

TEST(Artifact, LoadRejectsBadMagic) {
  const std::string path = temp_path("bad_magic.cqar");
  std::ofstream(path, std::ios::binary) << "NOTANARTIFACTFILE_PADDING_PADDING";
  EXPECT_THROW(load_artifact(path), ArtifactError);
  std::remove(path.c_str());
}

TEST(Artifact, LoadRejectsTruncatedFile) {
  nn::MlpConfig config;
  config.in_features = 6;
  config.hidden = {8, 8};
  nn::Mlp mlp(config);
  util::Rng rng(10);
  quantize_for_test(mlp, Tensor::randn({4, 6}, rng));
  const std::string path = temp_path("truncated.cqar");
  save_artifact(path, export_model(mlp));

  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)), {});
  in.close();
  bytes.resize(bytes.size() / 2);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_THROW(load_artifact(path), ArtifactError);
  std::remove(path.c_str());
}

TEST(Artifact, LoadRejectsBitFlipAnywhereInPayload) {
  nn::MlpConfig config;
  config.in_features = 6;
  config.hidden = {8, 8};
  nn::Mlp mlp(config);
  util::Rng rng(11);
  quantize_for_test(mlp, Tensor::randn({4, 6}, rng));
  const std::string path = temp_path("corrupt.cqar");
  save_artifact(path, export_model(mlp));

  std::ifstream in(path, std::ios::binary);
  std::vector<char> pristine((std::istreambuf_iterator<char>(in)), {});
  in.close();

  // Flip one bit at several payload offsets; the CRC must catch every one.
  constexpr std::size_t header = 4 + 4 + 8;
  for (std::size_t offset = header; offset + 4 < pristine.size();
       offset += pristine.size() / 7 + 1) {
    std::vector<char> corrupted = pristine;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x01);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
    EXPECT_THROW(load_artifact(path), ArtifactError) << "offset " << offset;
  }
  std::remove(path.c_str());
}

TEST(Artifact, LoadRejectsTamperedHeaderFields) {
  nn::MlpConfig config;
  config.in_features = 6;
  config.hidden = {8, 8};
  nn::Mlp mlp(config);
  util::Rng rng(14);
  quantize_for_test(mlp, Tensor::randn({4, 6}, rng));
  const std::string path = temp_path("header.cqar");
  save_artifact(path, export_model(mlp));

  std::ifstream in(path, std::ios::binary);
  std::vector<char> pristine((std::istreambuf_iterator<char>(in)), {});
  in.close();

  // The header is not covered by the payload CRC, so every field must
  // be validated explicitly: magic (bytes 0-3), version (4-7),
  // payload size (8-15).
  for (const std::size_t offset : {0u, 4u, 8u}) {
    std::vector<char> corrupted = pristine;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x01);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
    EXPECT_THROW(load_artifact(path), ArtifactError) << "header offset " << offset;
  }
  std::remove(path.c_str());
}

TEST(Artifact, LoadRejectsTrailingGarbage) {
  nn::MlpConfig config;
  config.in_features = 6;
  config.hidden = {8, 8};
  nn::Mlp mlp(config);
  util::Rng rng(15);
  quantize_for_test(mlp, Tensor::randn({4, 6}, rng));
  const std::string path = temp_path("trailing.cqar");
  save_artifact(path, export_model(mlp));
  std::ofstream(path, std::ios::binary | std::ios::app) << "EXTRA";
  EXPECT_THROW(load_artifact(path), ArtifactError);
  std::remove(path.c_str());
}

TEST(Artifact, InstantiateRejectsWrongArchitecture) {
  // A valid artifact for one architecture must not load into a
  // descriptor claiming a different (incompatible) one.
  nn::MlpConfig config;
  config.in_features = 6;
  config.hidden = {8, 8};
  nn::Mlp mlp(config);
  util::Rng rng(16);
  quantize_for_test(mlp, Tensor::randn({4, 6}, rng));
  QuantizedArtifact artifact = export_model(mlp);
  artifact.arch.params["hidden0"] = 16;  // wrong width
  EXPECT_THROW(instantiate(artifact), ArtifactError);
}

TEST(Artifact, SizeReportShowsCompression) {
  nn::VggSmallConfig config;
  config.image_size = 8;
  config.c1 = 4;
  config.c2 = 8;
  config.c3 = 8;
  config.f1 = 32;
  config.f2 = 24;
  config.f3 = 16;
  nn::VggSmall vgg(config);
  util::Rng rng(12);
  quantize_for_test(vgg, Tensor::randn({4, 3, 8, 8}, rng));
  const QuantizedArtifact artifact = export_model(vgg);
  const SizeReport report = size_report(artifact);

  EXPECT_GT(report.packed_code_bytes, 0u);
  EXPECT_GT(report.dense_bytes, 0u);
  EXPECT_GT(report.fp32_weight_bytes, report.packed_code_bytes)
      << "packed codes must be smaller than fp32 weights";
  EXPECT_GT(report.compression_ratio(), 1.0);
  // The 4,3,2,1,0 pattern averages 2 bits/weight = 1/16 of fp32.
  EXPECT_LT(static_cast<double>(report.packed_code_bytes),
            0.11 * static_cast<double>(report.fp32_weight_bytes));
}

TEST(Artifact, ActivationCalibrationSurvivesRoundTrip) {
  nn::MlpConfig config;
  config.in_features = 7;
  config.hidden = {9, 9};
  nn::Mlp mlp(config);
  util::Rng rng(13);
  quantize_for_test(mlp, Tensor::randn({8, 7}, rng));

  const QuantizedArtifact artifact = export_model(mlp);
  auto restored = instantiate(artifact);
  const auto original_aqs = mlp.activation_quantizers();
  const auto restored_aqs = restored->activation_quantizers();
  ASSERT_EQ(original_aqs.size(), restored_aqs.size());
  for (std::size_t i = 0; i < original_aqs.size(); ++i) {
    EXPECT_EQ(restored_aqs[i]->bits(), original_aqs[i]->bits());
    EXPECT_EQ(restored_aqs[i]->max_activation(), original_aqs[i]->max_activation());
    EXPECT_FALSE(restored_aqs[i]->calibrating());
  }
}

}  // namespace
}  // namespace cq::deploy
