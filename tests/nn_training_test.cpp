#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "nn/loss.h"
#include "nn/models/mlp.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace cq::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogM) {
  SoftmaxCrossEntropy ce;
  const double loss = ce.forward(Tensor({2, 4}), {0, 3});
  EXPECT_NEAR(loss, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionNearZeroLoss) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 3});
  logits.at(0, 1) = 50.0f;
  EXPECT_NEAR(ce.forward(logits, {1}), 0.0, 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy ce;
  util::Rng rng(1);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> labels = {0, 2, 4};
  ce.forward(logits, labels);
  const Tensor grad = ce.backward();
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(eps);
    const double lp = ce.forward(logits, labels);
    logits[i] = orig - static_cast<float>(eps);
    const double lm = ce.forward(logits, labels);
    logits[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), grad[i], 1e-3);
  }
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  SoftmaxCrossEntropy ce;
  util::Rng rng(2);
  const Tensor logits = Tensor::randn({4, 6}, rng);
  ce.forward(logits, {1, 2, 3, 0});
  const Tensor grad = ce.backward();
  for (int r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 6; ++c) sum += grad.at(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(KnowledgeDistillLoss, MatchesCeWhenAlphaOne) {
  KnowledgeDistillLoss kd(1.0);
  SoftmaxCrossEntropy ce;
  util::Rng rng(3);
  const Tensor student = Tensor::randn({2, 4}, rng);
  const Tensor teacher = Tensor::randn({2, 4}, rng);
  const std::vector<int> labels = {0, 2};
  EXPECT_NEAR(kd.forward(student, teacher, labels), ce.forward(student, labels), 1e-6);
  const Tensor g_kd = kd.backward();
  ce.forward(student, labels);
  EXPECT_TRUE(g_kd.allclose(ce.backward(), 1e-6f));
}

TEST(KnowledgeDistillLoss, KlZeroWhenStudentMatchesTeacher) {
  KnowledgeDistillLoss kd(0.0);
  util::Rng rng(4);
  const Tensor logits = Tensor::randn({3, 5}, rng);
  EXPECT_NEAR(kd.forward(logits, logits, {0, 1, 2}), 0.0, 1e-6);
}

TEST(KnowledgeDistillLoss, KlIsPositiveWhenDistributionsDiffer) {
  KnowledgeDistillLoss kd(0.0);
  const Tensor student({1, 2}, {2.0f, 0.0f});
  const Tensor teacher({1, 2}, {0.0f, 2.0f});
  EXPECT_GT(kd.forward(student, teacher, {0}), 0.1);
}

TEST(KnowledgeDistillLoss, GradientMatchesFiniteDifference) {
  KnowledgeDistillLoss kd(0.3);
  util::Rng rng(5);
  Tensor student = Tensor::randn({2, 4}, rng);
  const Tensor teacher = Tensor::randn({2, 4}, rng);
  const std::vector<int> labels = {3, 1};
  kd.forward(student, teacher, labels);
  const Tensor grad = kd.backward();
  const double eps = 1e-3;
  for (std::size_t i = 0; i < student.numel(); ++i) {
    const float orig = student[i];
    student[i] = orig + static_cast<float>(eps);
    const double lp = kd.forward(student, teacher, labels);
    student[i] = orig - static_cast<float>(eps);
    const double lm = kd.forward(student, teacher, labels);
    student[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), grad[i], 1e-3);
  }
}

TEST(Accuracy, CountsTop1) {
  Tensor logits({2, 3});
  logits.at(0, 1) = 1.0f;  // predicts 1
  logits.at(1, 0) = 1.0f;  // predicts 0
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 1.0);
}

TEST(Sgd, PlainGradientDescentStep) {
  Parameter p("w", Tensor({2}, {1.0f, 2.0f}));
  p.grad = Tensor({2}, {0.5f, -0.5f});
  Sgd opt({&p}, /*lr=*/0.1, /*momentum=*/0.0, /*weight_decay=*/0.0);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.95f);
  EXPECT_FLOAT_EQ(p.value[1], 2.05f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p("w", Tensor({1}, {0.0f}));
  Sgd opt({&p}, 1.0, 0.9, 0.0);
  p.grad = Tensor({1}, {1.0f});
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  opt.step();  // v=0.9*1+1=1.9, w=-2.9
  EXPECT_FLOAT_EQ(p.value[0], -2.9f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Parameter p("w", Tensor({1}, {10.0f}));
  p.grad = Tensor({1}, {0.0f});
  Sgd opt({&p}, 0.1, 0.0, 0.5);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(Sgd, ZeroGradClears) {
  Parameter p("w", Tensor({1}, {1.0f}));
  p.grad = Tensor({1}, {5.0f});
  Sgd opt({&p}, 0.1);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(StepLrSchedule, DecaysAtMilestones) {
  StepLrSchedule sched(1.0, {10, 20}, 0.1);
  EXPECT_DOUBLE_EQ(sched.lr_at(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.lr_at(9), 1.0);
  EXPECT_DOUBLE_EQ(sched.lr_at(10), 0.1);
  EXPECT_NEAR(sched.lr_at(25), 0.01, 1e-12);
}

TEST(GatherBatch, CopiesSelectedRows) {
  Tensor images({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor batch = gather_batch(images, {2, 0});
  EXPECT_EQ(batch.shape(), (tensor::Shape{2, 2}));
  EXPECT_FLOAT_EQ(batch.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(batch.at(1, 1), 2.0f);
}

/// Builds a linearly separable 2-class toy problem.
void make_toy(Tensor& images, std::vector<int>& labels, int n, util::Rng& rng) {
  images = Tensor({n, 4});
  labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    for (int f = 0; f < 4; ++f) {
      images.at(i, f) =
          static_cast<float>(rng.normal(cls == 0 ? -1.0 : 1.0, 0.5));
    }
    labels[static_cast<std::size_t>(i)] = cls;
  }
}

TEST(Trainer, LearnsSeparableToyProblem) {
  util::Rng rng(6);
  Tensor images;
  std::vector<int> labels;
  make_toy(images, labels, 200, rng);

  Mlp model({4, {16, 16}, 2, /*seed=*/3});
  TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 20;
  tc.lr = 0.1;
  tc.weight_decay = 0.0;
  Trainer trainer(tc);
  const auto history = trainer.fit(model, images, labels);
  ASSERT_EQ(history.size(), 20u);
  EXPECT_LT(history.back().loss, history.front().loss);
  EXPECT_GT(Trainer::evaluate(model, images, labels), 0.95);
}

TEST(Trainer, KdRefinementTracksTeacher) {
  util::Rng rng(7);
  Tensor images;
  std::vector<int> labels;
  make_toy(images, labels, 200, rng);

  Mlp teacher({4, {16, 16}, 2, 3});
  TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 20;
  tc.lr = 0.1;
  Trainer trainer(tc);
  trainer.fit(teacher, images, labels);

  Mlp student({4, {16, 16}, 2, 5});  // different init
  TrainConfig kd_tc;
  kd_tc.epochs = 20;
  kd_tc.batch_size = 20;
  kd_tc.lr = 0.1;
  kd_tc.kd_alpha = 0.3;
  Trainer kd_trainer(kd_tc);
  kd_trainer.fit(student, images, labels, &teacher);
  EXPECT_GT(Trainer::evaluate(student, images, labels), 0.9);
}

TEST(Trainer, EvaluateHandlesPartialBatches) {
  util::Rng rng(8);
  Tensor images;
  std::vector<int> labels;
  make_toy(images, labels, 17, rng);  // not a multiple of the batch
  Mlp model({4, {8}, 2, 3});
  const double acc = Trainer::evaluate(model, images, labels, 5);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(EpochStats, LrFollowsSchedule) {
  util::Rng rng(9);
  Tensor images;
  std::vector<int> labels;
  make_toy(images, labels, 40, rng);
  Mlp model({4, {8}, 2, 3});
  TrainConfig tc;
  tc.epochs = 4;
  tc.lr = 1.0;
  tc.lr_milestones = {2};
  tc.lr_decay = 0.5;
  Trainer trainer(tc);
  const auto history = trainer.fit(model, images, labels);
  EXPECT_DOUBLE_EQ(history[0].lr, 1.0);
  EXPECT_DOUBLE_EQ(history[1].lr, 1.0);
  EXPECT_DOUBLE_EQ(history[2].lr, 0.5);
  EXPECT_DOUBLE_EQ(history[3].lr, 0.5);
}

}  // namespace
}  // namespace cq::nn
