#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/models/resnet20.h"
#include "quant/integer_gemm.h"
#include "quant/uniform.h"

namespace cq::nn {
namespace {

TEST(BasicBlock, IdentityShortcutPreservesShape) {
  util::Rng rng(1);
  BasicBlock block(4, 4, 1, rng, "b");
  const Tensor y = block.forward(Tensor::randn({2, 4, 6, 6}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 4, 6, 6}));
  EXPECT_EQ(block.downsample_conv(), nullptr);
}

TEST(BasicBlock, ProjectionShortcutDownsamples) {
  util::Rng rng(2);
  BasicBlock block(4, 8, 2, rng, "b");
  const Tensor y = block.forward(Tensor::randn({2, 4, 8, 8}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 8, 4, 4}));
  ASSERT_NE(block.downsample_conv(), nullptr);
  EXPECT_EQ(block.downsample_conv()->kernel(), 1);
  EXPECT_EQ(block.downsample_conv()->stride(), 2);
}

TEST(BasicBlock, ChannelChangeWithoutStrideAlsoProjects) {
  util::Rng rng(3);
  BasicBlock block(4, 6, 1, rng, "b");
  ASSERT_NE(block.downsample_conv(), nullptr);
  const Tensor y = block.forward(Tensor::randn({1, 4, 4, 4}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 6, 4, 4}));
}

TEST(BasicBlock, OutputIsNonNegativeAfterFinalRelu) {
  util::Rng rng(4);
  BasicBlock block(3, 3, 1, rng, "b");
  const Tensor y = block.forward(Tensor::randn({2, 3, 5, 5}, rng, 2.0f));
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_GE(y[i], 0.0f);
}

TEST(BasicBlock, GradCheckIdentity) {
  util::Rng rng(5);
  BasicBlock block(2, 2, 1, rng, "b");
  const auto r = testutil::gradcheck(block, Tensor::randn({2, 2, 4, 4}, rng));
  EXPECT_LT(r.p95_input_error, 1e-2);
  EXPECT_LT(r.p95_param_error, 1e-2);
}

TEST(BasicBlock, GradCheckProjection) {
  util::Rng rng(6);
  BasicBlock block(2, 4, 2, rng, "b");
  const auto r = testutil::gradcheck(block, Tensor::randn({2, 2, 8, 8}, rng));
  EXPECT_LT(r.p95_input_error, 1e-2);
  EXPECT_LT(r.p95_param_error, 1e-2);
}

TEST(BasicBlock, ParametersIncludeProjection) {
  util::Rng rng(7);
  BasicBlock identity(4, 4, 1, rng, "a");
  BasicBlock projection(4, 8, 2, rng, "b");
  // conv1+bn1+conv2+bn2 = 8 params; projection adds conv+bn = 4 more.
  EXPECT_EQ(identity.parameters().size(), 8u);
  EXPECT_EQ(projection.parameters().size(), 12u);
}

TEST(BasicBlock, ProbesRecordBothStages) {
  util::Rng rng(8);
  BasicBlock block(3, 3, 1, rng, "b");
  block.probe1()->set_recording(true);
  block.probe2()->set_recording(true);
  const Tensor x = Tensor::randn({1, 3, 4, 4}, rng);
  const Tensor y = block.forward(x);
  EXPECT_EQ(block.probe1()->activation().shape(), (tensor::Shape{1, 3, 4, 4}));
  EXPECT_TRUE(block.probe2()->activation().allclose(y));
  block.backward(Tensor::ones(y.shape()));
  EXPECT_FALSE(block.probe1()->gradient().empty());
  EXPECT_FALSE(block.probe2()->gradient().empty());
}

TEST(BasicBlock, QuantizingConvsChangesOutput) {
  util::Rng rng(9);
  BasicBlock block(4, 4, 1, rng, "b");
  const Tensor x = Tensor::randn({1, 4, 4, 4}, rng);
  block.set_training(false);
  const Tensor y_fp = block.forward(x);
  block.conv1()->set_filter_bits({1, 1, 1, 1});
  block.conv2()->set_filter_bits({1, 1, 1, 1});
  const Tensor y_q = block.forward(x);
  EXPECT_FALSE(y_fp.allclose(y_q, 1e-4f));
}

// Integer engine agrees with the float fake-quant path when both
// operands sit exactly on their quantizer grids.
TEST(IntegerEngine, MatchesFloatOnGridValues) {
  const quant::UniformRange wr{-1.0f, 1.0f};
  const quant::UniformRange ar{0.0f, 2.0f};
  const int wbits = 3;
  const int abits = 4;
  util::Rng rng(10);
  const int k = 16;
  std::vector<float> w(k), a(k);
  std::vector<std::int32_t> wq(k), aq(k);
  for (int i = 0; i < k; ++i) {
    w[static_cast<std::size_t>(i)] = quant::quantize_one(
        static_cast<float>(rng.uniform(-1.0, 1.0)), wr, wbits);
    a[static_cast<std::size_t>(i)] = quant::quantize_one(
        static_cast<float>(rng.uniform(0.0, 2.0)), ar, abits);
    wq[static_cast<std::size_t>(i)] = quant::encode(w[static_cast<std::size_t>(i)], wr, wbits);
    aq[static_cast<std::size_t>(i)] = quant::encode(a[static_cast<std::size_t>(i)], ar, abits);
  }
  // Float dot product.
  double f = 0.0;
  for (int i = 0; i < k; ++i) f += static_cast<double>(w[static_cast<std::size_t>(i)]) *
                                   a[static_cast<std::size_t>(i)];
  // Integer dot product on codes, then affine correction:
  // w = sw*qw + wlo, a = sa*qa + alo.
  std::int64_t dot_qq = 0;
  std::int64_t sum_qw = 0;
  std::int64_t sum_qa = 0;
  for (int i = 0; i < k; ++i) {
    dot_qq += static_cast<std::int64_t>(wq[static_cast<std::size_t>(i)]) * aq[static_cast<std::size_t>(i)];
    sum_qw += wq[static_cast<std::size_t>(i)];
    sum_qa += aq[static_cast<std::size_t>(i)];
  }
  const double sw = (wr.hi - wr.lo) / static_cast<double>(quant::levels_for_bits(wbits) - 1);
  const double sa = (ar.hi - ar.lo) / static_cast<double>(quant::levels_for_bits(abits) - 1);
  const double reconstructed = sw * sa * static_cast<double>(dot_qq) +
                               sw * ar.lo * static_cast<double>(sum_qw) +
                               sa * wr.lo * static_cast<double>(sum_qa) +
                               static_cast<double>(k) * wr.lo * ar.lo;
  EXPECT_NEAR(reconstructed, f, 1e-4);
}

}  // namespace
}  // namespace cq::nn
