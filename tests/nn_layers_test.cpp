#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/act_quant.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/probe.h"

namespace cq::nn {
namespace {

using testutil::gradcheck;

TEST(Linear, ForwardMatchesHandComputed) {
  util::Rng rng(1);
  Linear fc(2, 2, rng);
  fc.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  fc.bias().value = Tensor({2}, {0.5f, -0.5f});
  const Tensor x({1, 2}, {1, 1});
  const Tensor y = fc.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);   // 1*1 + 2*1 + 0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);   // 3*1 + 4*1 - 0.5
}

TEST(Linear, RejectsWrongInputShape) {
  util::Rng rng(1);
  Linear fc(4, 2, rng);
  EXPECT_THROW(fc.forward(Tensor({1, 3})), std::invalid_argument);
}

TEST(Linear, GradCheck) {
  util::Rng rng(2);
  Linear fc(5, 4, rng);
  const auto r = gradcheck(fc, Tensor::randn({3, 5}, rng));
  EXPECT_LT(r.max_input_error, 1e-2);
  EXPECT_LT(r.max_param_error, 1e-2);
}

TEST(Linear, QuantizedForwardUsesGrid) {
  util::Rng rng(3);
  Linear fc(4, 3, rng);
  fc.set_filter_bits({2, 2, 2});
  fc.forward(Tensor::randn({2, 4}, rng));
  const quant::UniformRange range = quant::symmetric_range(fc.weight().value.span());
  for (int k = 0; k < 3; ++k) {
    for (const float w : fc.effective_weight().row(k)) {
      EXPECT_FLOAT_EQ(w, quant::quantize_one(w, range, 2));
    }
  }
}

TEST(Linear, ZeroBitNeuronIsFullyPruned) {
  util::Rng rng(4);
  Linear fc(4, 2, rng);
  fc.bias().value = Tensor({2}, {1.0f, 1.0f});
  fc.set_filter_bits({0, 4});
  const Tensor y = fc.forward(Tensor::randn({2, 4}, rng));
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);  // weights and bias zeroed
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.0f);
  EXPECT_NE(y.at(0, 1), 0.0f);
}

TEST(Linear, SteGradCheckOnInputWithQuantizedWeights) {
  // Input gradients must match finite differences of the *quantized*
  // forward function (the weights used are piecewise constant in x).
  util::Rng rng(5);
  Linear fc(5, 4, rng);
  fc.set_filter_bits({3, 3, 3, 3});
  Tensor x = Tensor::randn({2, 5}, rng);
  fc.zero_grad();
  fc.forward(x);
  Tensor w = Tensor::ones({2, 4});
  const Tensor dx = fc.backward(w);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double lp = fc.forward(x).sum();
    x[i] = orig - static_cast<float>(eps);
    const double lm = fc.forward(x).sum();
    x[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[i], 1e-2) << "i=" << i;
  }
}

TEST(Linear, FilterBitsSizeValidated) {
  util::Rng rng(6);
  Linear fc(3, 2, rng);
  EXPECT_THROW(fc.set_filter_bits({1}), std::invalid_argument);
  EXPECT_NO_THROW(fc.set_filter_bits({1, 2}));
  fc.clear_filter_bits();
  EXPECT_TRUE(fc.filter_bits().empty());
}

TEST(Linear, QuantizableInterface) {
  util::Rng rng(7);
  Linear fc(6, 3, rng);
  quant::QuantizableLayer& q = fc;
  EXPECT_EQ(q.num_filters(), 3);
  EXPECT_EQ(q.weights_per_filter(), 6u);
  EXPECT_EQ(q.filter_weights(1).size(), 6u);
  EXPECT_GT(q.weight_abs_max(), 0.0f);
}

TEST(Conv2d, ForwardMatchesDirectConvolution) {
  util::Rng rng(8);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), (tensor::Shape{2, 3, 5, 5}));
  // Direct convolution for a few spot positions.
  const Tensor& w = conv.weight().value;
  for (const auto& [n, oc, oy, ox] : {std::tuple{0, 0, 0, 0}, std::tuple{1, 2, 2, 3},
                                     std::tuple{0, 1, 4, 4}}) {
    double acc = conv.bias().value[static_cast<std::size_t>(oc)];
    for (int ic = 0; ic < 2; ++ic) {
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) {
          const int iy = oy - 1 + ky;
          const int ix = ox - 1 + kx;
          if (iy < 0 || iy >= 5 || ix < 0 || ix >= 5) continue;
          acc += static_cast<double>(w.at(oc, (ic * 3 + ky) * 3 + kx)) * x.at(n, ic, iy, ix);
        }
      }
    }
    EXPECT_NEAR(y.at(n, oc, oy, ox), acc, 1e-4) << n << "," << oc << "," << oy << "," << ox;
  }
}

TEST(Conv2d, StridedOutputShape) {
  util::Rng rng(9);
  Conv2d conv(1, 4, 3, 2, 1, rng);
  const Tensor y = conv.forward(Tensor::randn({1, 1, 8, 8}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 4, 4, 4}));
}

TEST(Conv2d, OneByOneKernel) {
  util::Rng rng(10);
  Conv2d conv(3, 2, 1, 1, 0, rng);
  const Tensor y = conv.forward(Tensor::randn({1, 3, 4, 4}, rng));
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 2, 4, 4}));
}

TEST(Conv2d, GradCheck) {
  util::Rng rng(11);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const auto r = gradcheck(conv, Tensor::randn({2, 2, 4, 4}, rng));
  EXPECT_LT(r.max_input_error, 1e-2);
  EXPECT_LT(r.max_param_error, 1e-2);
}

TEST(Conv2d, GradCheckStridedNoPad) {
  util::Rng rng(12);
  Conv2d conv(1, 2, 3, 2, 0, rng);
  const auto r = gradcheck(conv, Tensor::randn({2, 1, 7, 7}, rng));
  EXPECT_LT(r.max_input_error, 1e-2);
  EXPECT_LT(r.max_param_error, 1e-2);
}

TEST(Conv2d, ZeroBitFilterProducesZeroPlane) {
  util::Rng rng(13);
  Conv2d conv(1, 2, 3, 1, 1, rng);
  conv.bias().value = Tensor({2}, {0.7f, 0.7f});
  conv.set_filter_bits({0, 4});
  const Tensor y = conv.forward(Tensor::randn({1, 1, 4, 4}, rng));
  for (int s = 0; s < 16; ++s) EXPECT_FLOAT_EQ(y[static_cast<std::size_t>(s)], 0.0f);
}

TEST(Conv2d, QuantizedWeightsOnPerLayerGrid) {
  util::Rng rng(14);
  Conv2d conv(2, 4, 3, 1, 1, rng);
  conv.set_filter_bits({1, 2, 3, 4});
  conv.forward(Tensor::randn({1, 2, 4, 4}, rng));
  const quant::UniformRange range = quant::symmetric_range(conv.weight().value.span());
  for (int k = 0; k < 4; ++k) {
    const int bits = conv.filter_bits()[static_cast<std::size_t>(k)];
    for (const float w : conv.effective_weight().row(k)) {
      EXPECT_FLOAT_EQ(w, quant::quantize_one(w, range, bits)) << "filter " << k;
    }
  }
}

TEST(Conv2d, AccumulatorWrapBoundsOutput) {
  util::Rng rng(15);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.bias().value.fill(0.0f);
  conv.set_accumulator_wrap(0.5f);
  const Tensor y = conv.forward(Tensor::randn({1, 1, 6, 6}, rng, 3.0f));
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_LE(std::fabs(y[i]), 0.25f + 1e-5f);
  }
}

TEST(ReLU, ForwardZeroesNegatives) {
  ReLU relu;
  const Tensor y = relu.forward(Tensor({4}, {-1, 0, 2, -3}));
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU relu;
  relu.forward(Tensor({3}, {-1, 1, 2}));
  const Tensor g = relu.backward(Tensor({3}, {5, 5, 5}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 5.0f);
  EXPECT_EQ(g[2], 5.0f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  const Tensor y = flat.forward(Tensor({2, 3, 2, 2}));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 12}));
  const Tensor g = flat.backward(Tensor({2, 12}));
  EXPECT_EQ(g.shape(), (tensor::Shape{2, 3, 2, 2}));
}

TEST(MaxPool, ForwardSelectsWindowMax) {
  MaxPool2d pool(2);
  const Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 1, 1}));
  EXPECT_EQ(y[0], 5.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  pool.forward(Tensor({1, 1, 2, 2}, {1, 5, 3, 2}));
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, {7.0f}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 7.0f);
  EXPECT_EQ(g[2], 0.0f);
}

TEST(MaxPool, GradCheck) {
  util::Rng rng(16);
  MaxPool2d pool(2);
  const auto r = gradcheck(pool, Tensor::randn({2, 2, 4, 4}, rng));
  EXPECT_LT(r.max_input_error, 1e-2);
}

TEST(GlobalAvgPool, ForwardAndBackward) {
  GlobalAvgPool gap;
  const Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor y = gap.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 10.0f);
  const Tensor g = gap.backward(Tensor({1, 2}, {4.0f, 8.0f}));
  EXPECT_FLOAT_EQ(g[0], 1.0f);
  EXPECT_FLOAT_EQ(g[4], 2.0f);
}

TEST(BatchNorm, TrainingNormalizesBatch) {
  BatchNorm2d bn(2);
  bn.set_training(true);
  util::Rng rng(17);
  const Tensor x = Tensor::randn({8, 2, 3, 3}, rng, 4.0f);
  const Tensor y = bn.forward(x);
  // Per-channel mean ~0, var ~1.
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    int count = 0;
    for (int n = 0; n < 8; ++n) {
      for (int s = 0; s < 9; ++s) {
        const float v = y.data()[(n * 2 + c) * 9 + s];
        sum += v;
        sq += v * v;
        ++count;
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.set_training(true);
  util::Rng rng(18);
  for (int i = 0; i < 50; ++i) bn.forward(Tensor::randn({16, 1, 2, 2}, rng, 2.0f));
  bn.set_training(false);
  // A constant input should map deterministically through running stats.
  const Tensor y1 = bn.forward(Tensor::full({1, 1, 2, 2}, 1.0f));
  const Tensor y2 = bn.forward(Tensor::full({4, 1, 2, 2}, 1.0f));
  EXPECT_NEAR(y1[0], y2[0], 1e-6);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 1.0f);
}

TEST(BatchNorm, GradCheckTrainingMode) {
  util::Rng rng(19);
  BatchNorm2d bn(3);
  bn.set_training(true);
  const auto r = gradcheck(bn, Tensor::randn({4, 3, 2, 2}, rng));
  EXPECT_LT(r.max_input_error, 2e-2);
  EXPECT_LT(r.max_param_error, 2e-2);
}

TEST(BatchNorm, EvalModeBackwardIsAffineScale) {
  BatchNorm2d bn(1);
  bn.running_mean()[0] = 1.0f;
  bn.running_var()[0] = 3.0f;
  bn.gamma().value[0] = 2.0f;
  bn.set_training(false);
  bn.forward(Tensor::full({1, 1, 2, 2}, 5.0f));
  const Tensor g = bn.backward(Tensor::full({1, 1, 2, 2}, 1.0f));
  const float expected = 2.0f / std::sqrt(3.0f + 1e-5f);
  for (std::size_t i = 0; i < g.numel(); ++i) EXPECT_NEAR(g[i], expected, 1e-5);
}

TEST(Probe, RecordsOnlyWhenEnabled) {
  Probe probe;
  const Tensor x({2, 2}, {1, 2, 3, 4});
  probe.forward(x);
  EXPECT_TRUE(probe.activation().empty());
  probe.set_recording(true);
  probe.forward(x);
  EXPECT_TRUE(probe.activation().allclose(x));
  probe.backward(x);
  EXPECT_TRUE(probe.gradient().allclose(x));
  probe.set_recording(false);
  EXPECT_TRUE(probe.activation().empty());
}

TEST(Probe, IsIdentity) {
  Probe probe;
  util::Rng rng(20);
  const Tensor x = Tensor::randn({3, 4}, rng);
  EXPECT_TRUE(probe.forward(x).allclose(x));
  EXPECT_TRUE(probe.backward(x).allclose(x));
}

TEST(ActQuant, PassThroughWhenDisabled) {
  ActQuant aq;
  util::Rng rng(21);
  const Tensor x = Tensor::randn({2, 3}, rng);
  EXPECT_TRUE(aq.forward(x).allclose(x));
}

TEST(ActQuant, CalibrationTracksMax) {
  ActQuant aq;
  aq.set_calibrating(true);
  aq.forward(Tensor({3}, {0.5f, 2.5f, 1.0f}));
  aq.forward(Tensor({3}, {0.1f, 0.2f, 3.5f}));
  aq.set_calibrating(false);
  EXPECT_FLOAT_EQ(aq.max_activation(), 3.5f);
}

TEST(ActQuant, QuantizesToGridWithinRange) {
  ActQuant aq;
  aq.set_max_activation(4.0f);
  aq.set_bits(2);
  const Tensor y = aq.forward(Tensor({5}, {0.0f, 1.1f, 2.2f, 3.9f, 7.0f}));
  const quant::UniformRange r{0.0f, 4.0f};
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], quant::quantize_one(1.1f, r, 2));
  EXPECT_FLOAT_EQ(y[4], 4.0f);  // clipped to the calibrated max
}

TEST(ActQuant, SteBlocksGradientAboveClip) {
  ActQuant aq;
  aq.set_max_activation(1.0f);
  aq.set_bits(3);
  aq.forward(Tensor({3}, {0.5f, 0.9f, 2.0f}));
  const Tensor g = aq.backward(Tensor({3}, {1, 1, 1}));
  EXPECT_EQ(g[0], 1.0f);
  EXPECT_EQ(g[1], 1.0f);
  EXPECT_EQ(g[2], 0.0f);
}

class ConvGeometrySweep
    : public testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvGeometrySweep, GradCheckInputGrad) {
  const auto [in_c, out_c, stride, pad] = GetParam();
  util::Rng rng(23);
  Conv2d conv(in_c, out_c, 3, stride, pad, rng);
  const int size = 6;
  const auto r = gradcheck(conv, Tensor::randn({1, in_c, size, size}, rng));
  EXPECT_LT(r.max_input_error, 1e-2);
  EXPECT_LT(r.max_param_error, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGeometrySweep,
                         testing::Values(std::tuple{1, 1, 1, 1}, std::tuple{2, 3, 1, 0},
                                         std::tuple{3, 2, 2, 1}, std::tuple{1, 4, 2, 0}));

}  // namespace
}  // namespace cq::nn
