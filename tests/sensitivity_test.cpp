#include <gtest/gtest.h>

#include "core/sensitivity.h"
#include "nn/models/mlp.h"
#include "nn/trainer.h"
#include "quant/bitwidth.h"

namespace cq::core {
namespace {

data::Dataset make_data(int per_class, util::Rng& rng) {
  data::Dataset d;
  const int n = 3 * per_class;
  d.images = nn::Tensor({n, 6});
  d.labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i / per_class;
    for (int f = 0; f < 6; ++f) {
      d.images.at(i, f) = static_cast<float>(rng.normal(f % 3 == cls ? 1.5 : 0.0, 0.4));
    }
    d.labels[static_cast<std::size_t>(i)] = cls;
  }
  return d;
}

TEST(Sensitivity, ProfilesEveryScoredLayerAndRestoresState) {
  util::Rng rng(1);
  nn::Mlp model({6, {16, 12, 10}, 3, 2});
  const data::Dataset val = make_data(20, rng);
  SensitivityProfiler profiler({1, 2, 4}, 60);
  const auto profile = profiler.profile(model, val);
  ASSERT_EQ(profile.size(), model.scored_layers().size());
  for (const auto& layer : profile) {
    ASSERT_EQ(layer.bits_tested.size(), 3u);
    for (const double acc : layer.accuracy) {
      EXPECT_GE(acc, 0.0);
      EXPECT_LE(acc, 1.0);
    }
  }
  // State restored: no layer left quantized.
  for (const auto& scored : model.scored_layers()) {
    EXPECT_TRUE(scored.layers.front()->filter_bits().empty());
  }
}

TEST(Sensitivity, FourBitsNoWorseThanOneBitOnTrainedModel) {
  util::Rng rng(2);
  const data::Dataset train = make_data(40, rng);
  nn::Mlp model({6, {16, 12, 10}, 3, 3});
  nn::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 20;
  tc.lr = 0.05;
  nn::Trainer trainer(tc);
  trainer.fit(model, train.images, train.labels);

  SensitivityProfiler profiler({1, 4}, 120);
  const auto profile = profiler.profile(model, train);
  for (const auto& layer : profile) {
    EXPECT_GE(layer.accuracy[1] + 0.05, layer.accuracy[0]) << layer.name;
  }
}

TEST(Sensitivity, DropAtHandlesUntestedBits) {
  LayerSensitivity sens;
  sens.bits_tested = {1, 4};
  sens.accuracy = {0.5, 0.9};
  EXPECT_DOUBLE_EQ(sens.drop_at(1, 0.95), 0.45);
  EXPECT_NEAR(sens.drop_at(4, 0.95), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(sens.drop_at(3, 0.95), 0.0);
}

TEST(StorageBits, CountsQuantizedAndPruned) {
  quant::BitArrangement arr;
  arr.add_layer({"a", {4, 0, 2}, 10});  // 40 + 0 + 20 bits
  EXPECT_DOUBLE_EQ(arr.storage_bits(), 60.0);
  EXPECT_DOUBLE_EQ(arr.storage_bits(/*pruned_bits=*/1), 70.0);
  EXPECT_DOUBLE_EQ(arr.storage_bytes(), 7.5);
}

}  // namespace
}  // namespace cq::core
