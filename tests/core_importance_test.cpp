#include <gtest/gtest.h>
#include <cmath>

#include "core/importance.h"
#include "data/synthetic.h"
#include "nn/models/mlp.h"
#include "nn/models/vgg_small.h"
#include "nn/trainer.h"

namespace cq::core {
namespace {

/// Tiny 3-class flat dataset with class-coded features.
data::Dataset make_flat_dataset(int per_class, int features, util::Rng& rng) {
  data::Dataset d;
  const int n = 3 * per_class;
  d.images = nn::Tensor({n, features});
  d.labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i / per_class;
    for (int f = 0; f < features; ++f) {
      d.images.at(i, f) = static_cast<float>(rng.normal(f == cls ? 2.0 : 0.0, 0.3));
    }
    d.labels[static_cast<std::size_t>(i)] = cls;
  }
  return d;
}

TEST(Importance, ScoresBoundedByClassCount) {
  util::Rng rng(1);
  nn::Mlp model({6, {12, 10}, 3, 2});
  const data::Dataset val = make_flat_dataset(8, 6, rng);
  ImportanceCollector collector({1e-50, 8});
  const auto scores = collector.collect(model, val);
  ASSERT_EQ(scores.size(), 1u);
  for (const float g : scores[0].neuron_gamma) {
    EXPECT_GE(g, 0.0f);
    EXPECT_LE(g, 3.0f + 1e-5f);
  }
}

TEST(Importance, DeadNeuronScoresZero) {
  util::Rng rng(2);
  nn::Mlp model({6, {12, 10}, 3, 3});
  // Kill neuron 4 of the scored hidden layer: zero its incoming row.
  auto scored = model.scored_layers();
  auto* fc = dynamic_cast<nn::Linear*>(scored[0].layers.front());
  ASSERT_NE(fc, nullptr);
  for (int c = 0; c < fc->in_features(); ++c) fc->weight().value.at(4, c) = 0.0f;
  fc->bias().value[4] = 0.0f;

  const data::Dataset val = make_flat_dataset(8, 6, rng);
  ImportanceCollector collector;
  const auto scores = collector.collect(model, val);
  EXPECT_FLOAT_EQ(scores[0].neuron_gamma[4], 0.0f);
  EXPECT_FLOAT_EQ(scores[0].filter_phi[4], 0.0f);
}

TEST(Importance, DisconnectedFromOutputScoresZero) {
  util::Rng rng(3);
  // Neuron with activation but zero outgoing weights: a = relu(...) > 0
  // but dPhi/da = 0, so the Taylor score (Eq. 5) must vanish.
  nn::Mlp model({6, {12, 10}, 3, 4});
  auto params = model.parameters();
  // Parameters: fc0.w, fc0.b, fc1.w, fc1.b, fc_out.w, fc_out.b.
  nn::Parameter* out_w = params[4];
  ASSERT_EQ(out_w->value.shape(), (tensor::Shape{3, 10}));
  for (int r = 0; r < 3; ++r) out_w->value.at(r, 7) = 0.0f;  // cut neuron 7

  const data::Dataset val = make_flat_dataset(8, 6, rng);
  ImportanceCollector collector;
  const auto scores = collector.collect(model, val);
  EXPECT_FLOAT_EQ(scores[0].neuron_gamma[7], 0.0f);
}

TEST(Importance, RestoresModelState) {
  util::Rng rng(4);
  nn::Mlp model({6, {12, 10}, 3, 5});
  model.set_training(true);
  const data::Dataset val = make_flat_dataset(4, 6, rng);
  ImportanceCollector collector;
  collector.collect(model, val);
  EXPECT_TRUE(model.training());
  for (const auto& scored : model.scored_layers()) {
    EXPECT_FALSE(scored.probe->recording());
  }
  // Parameter gradients cleared afterwards.
  for (nn::Parameter* p : model.parameters()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
  }
}

TEST(Importance, SamplesPerClassLimitsWork) {
  util::Rng rng(5);
  nn::Mlp model({6, {12, 10}, 3, 6});
  const data::Dataset val = make_flat_dataset(10, 6, rng);
  ImportanceCollector few({1e-50, 2});
  ImportanceCollector many({1e-50, 10});
  // Both must produce valid scores; with fewer samples beta is coarser.
  const auto s_few = few.collect(model, val);
  const auto s_many = many.collect(model, val);
  ASSERT_EQ(s_few.size(), s_many.size());
  for (const float g : s_few[0].neuron_gamma) {
    // With Ns=2, beta per class is a multiple of 0.5.
    const float doubled = 2.0f * g;
    EXPECT_NEAR(doubled, std::round(doubled), 1e-4);
  }
}

TEST(Importance, EmptyDatasetThrows) {
  nn::Mlp model({6, {12, 10}, 3, 7});
  data::Dataset empty;
  empty.images = nn::Tensor({0, 6});
  ImportanceCollector collector;
  EXPECT_THROW(collector.collect(model, empty), std::invalid_argument);
}

TEST(Importance, ConvScoresReducedPerFilter) {
  util::Rng rng(8);
  nn::VggSmallConfig cfg;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.c1 = 4;
  cfg.c2 = 4;
  cfg.c3 = 4;
  cfg.f1 = 8;
  cfg.f2 = 8;
  cfg.f3 = 8;
  nn::VggSmall model(cfg);

  data::SyntheticVisionConfig dcfg;
  dcfg.num_classes = 3;
  dcfg.image_size = 8;
  dcfg.train_per_class = 2;
  dcfg.val_per_class = 4;
  dcfg.test_per_class = 2;
  const data::DataSplit split = data::make_synthetic_vision(dcfg);

  ImportanceCollector collector({1e-50, 4});
  const auto scores = collector.collect(model, split.val);
  ASSERT_EQ(scores.size(), 7u);
  // Conv layers: phi has one entry per filter and phi == max over the
  // filter's spatial neurons.
  for (const auto& layer : scores) {
    ASSERT_EQ(layer.filter_phi.size(), static_cast<std::size_t>(layer.channels));
    for (int c = 0; c < layer.channels; ++c) {
      float expected = 0.0f;
      for (int s = 0; s < layer.spatial; ++s) {
        expected = std::max(
            expected, layer.neuron_gamma[static_cast<std::size_t>(c) * layer.spatial + s]);
      }
      EXPECT_FLOAT_EQ(layer.filter_phi[static_cast<std::size_t>(c)], expected);
    }
  }
  EXPECT_GT(max_score(scores), 0.0f);
  EXPECT_EQ(total_filters(scores), 4u + 4u + 4u + 4u + 8u + 8u + 8u);
}

TEST(Importance, TrainedModelHasClassStructure) {
  // After training, a reasonable model must contain neurons important
  // to multiple classes (gamma > 1) — the paper's core observation.
  util::Rng rng(9);
  nn::Mlp model({6, {16, 12}, 3, 10});
  const data::Dataset train = make_flat_dataset(40, 6, rng);
  nn::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 20;
  tc.lr = 0.05;
  nn::Trainer trainer(tc);
  trainer.fit(model, train.images, train.labels);
  ASSERT_GT(nn::Trainer::evaluate(model, train.images, train.labels), 0.9);

  ImportanceCollector collector({1e-50, 10});
  const auto scores = collector.collect(model, train);
  EXPECT_GT(max_score(scores), 1.5f);
}

}  // namespace
}  // namespace cq::core
