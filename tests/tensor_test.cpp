#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace cq::tensor {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({5, 0}), 0u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructFromValuesValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, FullAndOnes) {
  const Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  const Tensor o = Tensor::ones({2});
  EXPECT_EQ(o[1], 1.0f);
}

TEST(Tensor, At2dIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, At4dIndexingNchw) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.numel() - 1], 9.0f);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a({3}, {1, 2, 3});
  const Tensor b({3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[0], 2.0f);
  const Tensor c = a + b;
  EXPECT_EQ(c[1], 24.0f);
  const Tensor d = b - a;
  EXPECT_EQ(d[0], 8.0f);
  const Tensor e = a * 0.5f;
  EXPECT_EQ(e[2], 3.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  const Tensor b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Tensor, Reductions) {
  const Tensor t({4}, {1, -5, 3, 1});
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_EQ(t.abs_max(), 5.0f);
}

TEST(Tensor, RowAndArgmax) {
  const Tensor t({2, 3}, {1, 9, 2, 8, 1, 3});
  EXPECT_EQ(t.argmax_row(0), 1);
  EXPECT_EQ(t.argmax_row(1), 0);
  EXPECT_EQ(t.row(1)[2], 3.0f);
}

TEST(Tensor, AllClose) {
  const Tensor a({2}, {1.0f, 2.0f});
  const Tensor b({2}, {1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(a.allclose(b));
  const Tensor c({2}, {1.1f, 2.0f});
  EXPECT_FALSE(a.allclose(c));
}

TEST(Tensor, RandnStatistics) {
  util::Rng rng(1);
  const Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0, 0.1);
  double sq = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) sq += t[i] * t[i];
  EXPECT_NEAR(std::sqrt(sq / static_cast<double>(t.numel())), 2.0, 0.1);
}

TEST(Gemm, MatchesHandComputed) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4];
  gemm(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, AccumulateAddsIntoC) {
  const float a[] = {1, 0, 0, 1};
  const float b[] = {1, 2, 3, 4};
  float c[4] = {10, 10, 10, 10};
  gemm(a, b, c, 2, 2, 2, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 11);
  EXPECT_FLOAT_EQ(c[3], 14);
}

TEST(Gemm, TransposedVariantsAgree) {
  util::Rng rng(3);
  const int m = 4, k = 5, n = 3;
  const Tensor A = Tensor::randn({m, k}, rng);
  const Tensor B = Tensor::randn({k, n}, rng);
  Tensor C1({m, n});
  gemm(A.data(), B.data(), C1.data(), m, k, n);

  // A^T stored as [k, m].
  Tensor At({k, m});
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p) At.at(p, i) = A.at(i, p);
  Tensor C2({m, n});
  gemm_at_b(At.data(), B.data(), C2.data(), k, m, n);
  EXPECT_TRUE(C1.allclose(C2, 1e-4f));

  // B^T stored as [n, k].
  Tensor Bt({n, k});
  for (int p = 0; p < k; ++p)
    for (int j = 0; j < n; ++j) Bt.at(j, p) = B.at(p, j);
  Tensor C3({m, n});
  gemm_a_bt(A.data(), Bt.data(), C3.data(), m, k, n);
  EXPECT_TRUE(C1.allclose(C3, 1e-4f));
}

TEST(Im2col, IdentityKernelGeometry) {
  // 1x1 kernel, no padding: cols == input.
  ConvGeometry g;
  g.in_c = 2;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel = 1;
  g.stride = 1;
  g.pad = 0;
  std::vector<float> input(18);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<float>(i);
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size()) * g.out_h() * g.out_w());
  im2col(input.data(), g, cols.data());
  for (std::size_t i = 0; i < input.size(); ++i) EXPECT_EQ(cols[i], input[i]);
}

TEST(Im2col, ZeroPaddingAtBorders) {
  ConvGeometry g;
  g.in_c = 1;
  g.in_h = 2;
  g.in_w = 2;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  const std::vector<float> input = {1, 2, 3, 4};
  std::vector<float> cols(static_cast<std::size_t>(g.patch_size()) * g.out_h() * g.out_w());
  im2col(input.data(), g, cols.data());
  // Patch row (ky=0, kx=0) for output (0,0) looks at input (-1,-1) -> 0.
  EXPECT_EQ(cols[0], 0.0f);
  // Patch row (ky=1, kx=1) (center) for output (0,0) is input(0,0)=1.
  const int spatial = g.out_h() * g.out_w();
  EXPECT_EQ(cols[static_cast<std::size_t>(4) * spatial + 0], 1.0f);
}

TEST(Im2col, Col2imRoundTripIsMultiplicityWeighted) {
  // col2im(im2col(x)) multiplies each pixel by the number of windows
  // covering it; for kernel 1 that is exactly 1 -> identity.
  ConvGeometry g;
  g.in_c = 1;
  g.in_h = 4;
  g.in_w = 4;
  g.kernel = 1;
  g.stride = 1;
  g.pad = 0;
  std::vector<float> input(16, 2.0f);
  std::vector<float> cols(16);
  im2col(input.data(), g, cols.data());
  std::vector<float> back(16, 0.0f);
  col2im(cols.data(), g, back.data());
  for (const float v : back) EXPECT_EQ(v, 2.0f);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  const Tensor logits({2, 3}, {1, 2, 3, -1, -2, -3});
  const Tensor p = softmax_rows(logits);
  for (int r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += p.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 0));
  EXPECT_GT(p.at(1, 0), p.at(1, 2));
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Tensor logits({1, 2}, {1000.0f, 1001.0f});
  const Tensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0, 1e-5);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  const Tensor logits({1, 4}, {0.5f, -1.0f, 2.0f, 0.0f});
  const Tensor p = softmax_rows(logits);
  const Tensor lp = log_softmax_rows(logits);
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(lp.at(0, c), std::log(p.at(0, c)), 1e-5);
}

TEST(Serialize, RoundTripsTensors) {
  const std::string path = testing::TempDir() + "/cq_tensors.bin";
  util::Rng rng(4);
  std::map<std::string, Tensor> tensors;
  tensors.emplace("w", Tensor::randn({3, 4}, rng));
  tensors.emplace("b", Tensor::randn({7}, rng));
  save_tensors(path, tensors);
  const auto loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.at("w").allclose(tensors.at("w")));
  EXPECT_TRUE(loaded.at("b").allclose(tensors.at("b")));
  EXPECT_EQ(loaded.at("w").shape(), (Shape{3, 4}));
}

TEST(Serialize, BadMagicThrows) {
  const std::string path = testing::TempDir() + "/cq_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE";
  }
  EXPECT_THROW(load_tensors(path), std::runtime_error);
}

}  // namespace
}  // namespace cq::tensor
