#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "deploy/packing.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace cq::deploy {
namespace {

using nn::Conv2d;
using nn::Linear;
using tensor::Tensor;

/// Forward both layers on the same input and require bit-identical
/// effective weights — the contract unpack_layer guarantees.
template <typename Layer>
void expect_same_effective(Layer& a, Layer& b, const Tensor& input) {
  const Tensor out_a = a.forward(input);
  const Tensor out_b = b.forward(input);
  ASSERT_EQ(a.effective_weight().numel(), b.effective_weight().numel());
  for (std::size_t i = 0; i < a.effective_weight().numel(); ++i) {
    ASSERT_EQ(a.effective_weight()[i], b.effective_weight()[i]) << "weight " << i;
  }
  ASSERT_EQ(out_a.numel(), out_b.numel());
  for (std::size_t i = 0; i < out_a.numel(); ++i) {
    ASSERT_EQ(out_a[i], out_b[i]) << "output " << i;
  }
}

TEST(PackLayer, RequiresABitArrangement) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_THROW(pack_layer(layer, "fc"), std::invalid_argument);
}

TEST(PackLayer, RejectsBitWidthsAbove16) {
  util::Rng rng(1);
  Linear layer(4, 2, rng);
  layer.set_filter_bits({17, 4});
  EXPECT_THROW(pack_layer(layer, "fc"), std::invalid_argument);
}

TEST(PackLayer, PrunedFiltersContributeNoPayload) {
  util::Rng rng(2);
  Linear layer(10, 4, rng);
  layer.set_filter_bits({0, 0, 0, 0});
  const PackedLayer packed = pack_layer(layer, "fc");
  EXPECT_EQ(packed.payload_bits(), 0u);
  EXPECT_TRUE(packed.codes.empty());
  EXPECT_EQ(packed.bits_per_weight(), 0.0);
}

TEST(PackLayer, PayloadBitsMatchArrangement) {
  util::Rng rng(3);
  Linear layer(16, 3, rng);
  layer.set_filter_bits({4, 0, 2});
  const PackedLayer packed = pack_layer(layer, "fc");
  EXPECT_EQ(packed.payload_bits(), 16u * 4 + 16u * 2);
  EXPECT_EQ(packed.codes.size(), (16u * 6 + 7) / 8);
  EXPECT_NEAR(packed.bits_per_weight(), 6.0 / 3.0, 1e-12);
}

TEST(UnpackLayer, RoundTripsLinearBitExactly) {
  util::Rng rng(4);
  Linear original(12, 6, rng);
  original.set_filter_bits({4, 3, 2, 1, 0, 4});
  const PackedLayer packed = pack_layer(original, "fc");

  util::Rng rng2(999);  // deliberately different init
  Linear restored(12, 6, rng2);
  unpack_layer(packed, restored);

  EXPECT_EQ(restored.filter_bits(), original.filter_bits());
  EXPECT_GT(restored.weight_range_override(), 0.0f);

  util::Rng rng3(5);
  const Tensor input = Tensor::randn({3, 12}, rng3);
  expect_same_effective(original, restored, input);
}

TEST(UnpackLayer, RoundTripsConvBitExactly) {
  util::Rng rng(6);
  Conv2d original(3, 5, 3, 1, 1, rng);
  original.set_filter_bits({4, 2, 0, 1, 3});
  const PackedLayer packed = pack_layer(original, "conv");

  util::Rng rng2(1234);
  Conv2d restored(3, 5, 3, 1, 1, rng2);
  unpack_layer(packed, restored);

  util::Rng rng3(7);
  const Tensor input = Tensor::randn({2, 3, 8, 8}, rng3);
  expect_same_effective(original, restored, input);
}

TEST(UnpackLayer, PrunedFiltersDecodeToZeroWeights) {
  util::Rng rng(8);
  Linear original(5, 3, rng);
  original.set_filter_bits({0, 2, 0});
  const PackedLayer packed = pack_layer(original, "fc");

  util::Rng rng2(4321);
  Linear restored(5, 3, rng2);
  unpack_layer(packed, restored);
  for (const float w : restored.filter_weights(0)) EXPECT_EQ(w, 0.0f);
  for (const float w : restored.filter_weights(2)) EXPECT_EQ(w, 0.0f);
}

TEST(UnpackLayer, RejectsShapeMismatch) {
  util::Rng rng(9);
  Linear original(6, 4, rng);
  original.set_filter_bits({1, 1, 1, 1});
  const PackedLayer packed = pack_layer(original, "fc");

  Linear wrong_filters(6, 5, rng);
  EXPECT_THROW(unpack_layer(packed, wrong_filters), std::invalid_argument);
  Linear wrong_inputs(7, 4, rng);
  EXPECT_THROW(unpack_layer(packed, wrong_inputs), std::invalid_argument);
}

TEST(UnpackLayer, RejectsCorruptedFilterBitsTable) {
  util::Rng rng(10);
  Linear original(6, 4, rng);
  original.set_filter_bits({1, 1, 1, 1});
  PackedLayer packed = pack_layer(original, "fc");
  packed.filter_bits.pop_back();
  Linear restored(6, 4, rng);
  EXPECT_THROW(unpack_layer(packed, restored), std::invalid_argument);
}

TEST(UnpackLayer, RequantizationIsIdentityOnDecodedWeights) {
  // Forward twice: the frozen range override must make re-quantization
  // of already-decoded weights a fixed point.
  util::Rng rng(11);
  Linear original(20, 8, rng);
  original.set_filter_bits({4, 4, 3, 3, 2, 2, 1, 0});
  const PackedLayer packed = pack_layer(original, "fc");

  Linear restored(20, 8, rng);
  unpack_layer(packed, restored);
  util::Rng rng2(12);
  const Tensor input = Tensor::randn({4, 20}, rng2);
  const Tensor out1 = restored.forward(input);
  const Tensor master_before = restored.weight().value;
  const Tensor out2 = restored.forward(input);
  for (std::size_t i = 0; i < out1.numel(); ++i) ASSERT_EQ(out1[i], out2[i]);
  for (std::size_t i = 0; i < master_before.numel(); ++i) {
    ASSERT_EQ(restored.weight().value[i], master_before[i]);
  }
}

class PackingSweep : public ::testing::TestWithParam<int> {};

TEST_P(PackingSweep, UniformBitsRoundTrip) {
  const int bits = GetParam();
  util::Rng rng(100 + static_cast<std::uint64_t>(bits));
  Linear original(32, 16, rng);
  original.set_filter_bits(std::vector<int>(16, bits));
  const PackedLayer packed = pack_layer(original, "fc");
  EXPECT_EQ(packed.payload_bits(), 32u * 16u * static_cast<std::size_t>(bits));

  util::Rng rng2(1);
  Linear restored(32, 16, rng2);
  unpack_layer(packed, restored);
  util::Rng rng3(2);
  const Tensor input = Tensor::randn({2, 32}, rng3);
  expect_same_effective(original, restored, input);
}

INSTANTIATE_TEST_SUITE_P(Bits1To8, PackingSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace cq::deploy
